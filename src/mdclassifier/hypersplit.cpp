#include "mdclassifier/hypersplit.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace ofmtl::md {

ValueRange field_interval(const FieldMatch& fm, unsigned bits) {
  if (bits > 64) throw std::invalid_argument("interval fields must be <= 64 bits");
  const std::uint64_t full = low_mask(bits);
  switch (fm.kind) {
    case MatchKind::kAny:
      return {0, full};
    case MatchKind::kExact:
      return {fm.value.lo, fm.value.lo};
    case MatchKind::kPrefix: {
      const std::uint64_t lo = fm.prefix.value64();
      const std::uint64_t span = low_mask(bits - fm.prefix.length());
      return {lo, lo | span};
    }
    case MatchKind::kRange:
      return fm.range;
    case MatchKind::kMasked:
      throw std::invalid_argument("masked matches are not interval-shaped");
  }
  throw std::logic_error("unknown MatchKind");
}

HyperSplitClassifier::HyperSplitClassifier(RuleSet rules, HyperSplitConfig config)
    : rules_(std::move(rules)), config_(config) {
  for (const auto id : rules_.fields) {
    if (field_bits(id) > 64) {
      throw std::invalid_argument("HyperSplit model supports fields <= 64 bits");
    }
  }
  std::vector<Box> boxes;
  boxes.reserve(rules_.entries.size());
  for (const auto& entry : rules_.entries) {
    Box box;
    for (const auto id : rules_.fields) {
      box.ranges.push_back(field_interval(entry.match.get(id), field_bits(id)));
    }
    boxes.push_back(std::move(box));
  }
  std::vector<RuleIndex> all(rules_.entries.size());
  for (RuleIndex i = 0; i < all.size(); ++i) all[i] = i;
  if (!all.empty()) build(std::move(all), boxes, 0);
}

std::int32_t HyperSplitClassifier::build(std::vector<RuleIndex> active,
                                         std::vector<Box>& boxes,
                                         std::size_t depth) {
  const auto make_leaf = [&](std::vector<RuleIndex> rules) {
    Node node;
    node.leaf = true;
    node.rules = std::move(rules);
    // Highest priority first so leaf search can stop at the first match.
    std::stable_sort(node.rules.begin(), node.rules.end(),
                     [this](RuleIndex a, RuleIndex b) {
                       return rules_.entries[a].priority >
                              rules_.entries[b].priority;
                     });
    nodes_.push_back(std::move(node));
    max_leaf_depth_ = std::max(max_leaf_depth_, depth);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (active.size() <= config_.binth || depth >= config_.max_depth) {
    return make_leaf(std::move(active));
  }

  // Pick the dimension with the most distinct endpoints among active rules,
  // split at the median endpoint.
  std::size_t best_field = 0;
  std::uint64_t best_threshold = 0;
  std::size_t best_endpoints = 1;
  for (std::size_t f = 0; f < rules_.fields.size(); ++f) {
    std::set<std::uint64_t> endpoints;
    for (const auto index : active) {
      endpoints.insert(boxes[index].ranges[f].lo);
      endpoints.insert(boxes[index].ranges[f].hi);
    }
    if (endpoints.size() > best_endpoints) {
      best_endpoints = endpoints.size();
      best_field = f;
      auto it = endpoints.begin();
      std::advance(it, (endpoints.size() - 1) / 2);
      best_threshold = *it;
    }
  }
  if (best_endpoints <= 1) return make_leaf(std::move(active));

  std::vector<RuleIndex> left, right;
  for (const auto index : active) {
    const auto& range = boxes[index].ranges[best_field];
    if (range.lo <= best_threshold) left.push_back(index);
    if (range.hi > best_threshold) right.push_back(index);
  }
  if (left.size() == active.size() && right.size() == active.size()) {
    // Split separates nothing (all rules span the threshold): leaf.
    return make_leaf(std::move(active));
  }

  const auto node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].field = static_cast<std::uint8_t>(best_field);
  nodes_[node_index].threshold = best_threshold;
  const auto left_index = build(std::move(left), boxes, depth + 1);
  const auto right_index = build(std::move(right), boxes, depth + 1);
  nodes_[node_index].left = left_index;
  nodes_[node_index].right = right_index;
  return node_index;
}

std::optional<RuleIndex> HyperSplitClassifier::classify(
    const PacketHeader& header) const {
  last_accesses_ = 0;
  if (nodes_.empty()) return std::nullopt;
  std::size_t node = 0;
  while (!nodes_[node].leaf) {
    ++last_accesses_;
    const std::uint64_t value =
        header.get64(rules_.fields[nodes_[node].field]);
    node = static_cast<std::size_t>(value <= nodes_[node].threshold
                                        ? nodes_[node].left
                                        : nodes_[node].right);
  }
  for (const auto index : nodes_[node].rules) {
    ++last_accesses_;
    if (rules_.entries[index].match.matches(header)) return index;
  }
  return std::nullopt;
}

mem::MemoryReport HyperSplitClassifier::memory_report() const {
  mem::MemoryReport report;
  std::size_t internal = 0, leaf_refs = 0, leaves = 0;
  for (const auto& node : nodes_) {
    if (node.leaf) {
      ++leaves;
      leaf_refs += node.rules.size();
    } else {
      ++internal;
    }
  }
  // Internal node: field selector + 64-bit threshold + two pointers.
  report.add("hypersplit.internal", internal,
             8 + 64 + 2 * bits_for_max_value(nodes_.size()));
  report.add("hypersplit.leaf_rule_refs", leaf_refs, 32);
  report.add("hypersplit.leaf_headers", leaves, 16);
  return report;
}

}  // namespace ofmtl::md
