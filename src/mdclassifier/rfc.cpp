#include "mdclassifier/rfc.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace ofmtl::md {

namespace {

/// The set of chunk values a rule accepts, as an inclusive interval — every
/// supported constraint projects to one interval per 16-bit partition.
[[nodiscard]] ValueRange chunk_interval(const FieldMatch& fm, unsigned bits,
                                        unsigned partition) {
  const unsigned partitions = (bits + 15) / 16;
  const unsigned low_shift = 16 * (partitions - 1 - partition);
  switch (fm.kind) {
    case MatchKind::kAny:
      return {0, 0xFFFF};
    case MatchKind::kExact: {
      const std::uint64_t value = (fm.value >> low_shift).lo & 0xFFFF;
      return {value, value};
    }
    case MatchKind::kPrefix: {
      const unsigned plen = fm.prefix.partition16_length(partition);
      if (plen == 0) return {0, 0xFFFF};
      const std::uint64_t base = fm.prefix.partition16(partition);
      return {base, base | low_mask(16 - plen)};
    }
    case MatchKind::kRange:
      // Ranges only appear on 16-bit fields (ports) -> single partition.
      return fm.range;
    case MatchKind::kMasked: {
      const std::uint64_t mask = (fm.mask >> low_shift).lo & 0xFFFF;
      const std::uint64_t want = (fm.value >> low_shift).lo & 0xFFFF;
      // Only prefix-shaped masks project to one interval.
      unsigned len = 16;
      while (len > 0 && (mask >> (16 - len) << (16 - len)) != mask) --len;
      if (mask != high_mask(16, len)) {
        throw std::invalid_argument("RFC: non-prefix mask unsupported");
      }
      return {want, want | low_mask(16 - len)};
    }
  }
  throw std::logic_error("unknown MatchKind");
}

}  // namespace

RfcClassifier::RfcClassifier(RuleSet rules) : rules_(std::move(rules)) {
  const std::size_t rule_count = rules_.entries.size();
  const std::size_t mask_words = (rule_count + 63) / 64;

  for (const auto id : rules_.fields) {
    const unsigned parts = (field_bits(id) + 15) / 16;
    for (unsigned p = 0; p < parts; ++p) chunk_fields_.push_back({id, p});
  }

  // Phase 0: per chunk, classify all 2^16 values into equivalence classes
  // keyed by the set of rules whose chunk constraint accepts the value.
  // Rule constraints project to intervals, so the mask is constant on
  // elementary intervals of the rule-endpoint grid — computed per interval,
  // not per value.
  std::vector<std::vector<RuleMask>> class_masks_per_table;
  for (const auto& chunk : chunk_fields_) {
    Phase0Table table;
    table.class_of.resize(1U << 16);
    std::unordered_map<RuleMask, std::uint32_t, MaskHash> classes;
    std::vector<RuleMask> class_masks;
    const unsigned bits = field_bits(chunk.field);

    std::vector<ValueRange> intervals(rule_count);
    std::vector<std::uint32_t> boundaries = {0};
    for (RuleIndex r = 0; r < rule_count; ++r) {
      intervals[r] = chunk_interval(rules_.entries[r].match.get(chunk.field),
                                    bits, chunk.partition);
      boundaries.push_back(static_cast<std::uint32_t>(intervals[r].lo));
      if (intervals[r].hi < 0xFFFF) {
        boundaries.push_back(static_cast<std::uint32_t>(intervals[r].hi) + 1);
      }
    }
    std::sort(boundaries.begin(), boundaries.end());
    boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                     boundaries.end());

    for (std::size_t b = 0; b < boundaries.size(); ++b) {
      const std::uint32_t start = boundaries[b];
      const std::uint32_t end =
          b + 1 < boundaries.size() ? boundaries[b + 1] : 0x10000;
      RuleMask mask(mask_words, 0);
      for (RuleIndex r = 0; r < rule_count; ++r) {
        if (intervals[r].lo <= start && start <= intervals[r].hi) {
          mask[r / 64] |= std::uint64_t{1} << (r % 64);
        }
      }
      const auto [it, inserted] =
          classes.try_emplace(mask, static_cast<std::uint32_t>(classes.size()));
      if (inserted) class_masks.push_back(std::move(mask));
      for (std::uint32_t value = start; value < end; ++value) {
        table.class_of[value] = it->second;
      }
    }
    table.class_count = classes.size();
    class_masks_per_table.push_back(std::move(class_masks));
    phase0_.push_back(std::move(table));
  }

  // Reduction tree: combine tables pairwise left-to-right until one remains.
  // `active` holds (class-mask list) per live table; phase tables record how
  // to combine at lookup time.
  struct Live {
    std::size_t source;  // phase0 index or (phase0_count + phases_ index)
    std::vector<RuleMask> masks;
  };
  std::vector<Live> active;
  for (std::size_t i = 0; i < phase0_.size(); ++i) {
    active.push_back({i, std::move(class_masks_per_table[i])});
  }

  while (active.size() > 1) {
    std::vector<Live> next;
    for (std::size_t i = 0; i + 1 < active.size(); i += 2) {
      CrossTable cross;
      cross.left = active[i].source;
      cross.right = active[i + 1].source;
      cross.left_classes = active[i].masks.size();
      cross.right_classes = active[i + 1].masks.size();
      cross.class_of.resize(cross.left_classes * cross.right_classes);
      std::unordered_map<RuleMask, std::uint32_t, MaskHash> classes;
      std::vector<RuleMask> masks;
      for (std::size_t a = 0; a < cross.left_classes; ++a) {
        for (std::size_t b = 0; b < cross.right_classes; ++b) {
          RuleMask mask(mask_words);
          for (std::size_t w = 0; w < mask_words; ++w) {
            mask[w] = active[i].masks[a][w] & active[i + 1].masks[b][w];
          }
          const auto [it, inserted] = classes.try_emplace(
              mask, static_cast<std::uint32_t>(classes.size()));
          if (inserted) masks.push_back(std::move(mask));
          cross.class_of[a * cross.right_classes + b] = it->second;
        }
      }
      cross.class_count = classes.size();
      const std::size_t source = phase0_.size() + phases_.size();
      phases_.push_back(std::move(cross));
      next.push_back({source, std::move(masks)});
    }
    if (active.size() % 2 == 1) next.push_back(std::move(active.back()));
    active = std::move(next);
  }

  // Final classes -> best-first rule lists.
  if (!active.empty()) {
    final_rules_.resize(active[0].masks.size());
    for (std::size_t c = 0; c < active[0].masks.size(); ++c) {
      const RuleMask& mask = active[0].masks[c];
      for (RuleIndex r = 0; r < rule_count; ++r) {
        if (mask[r / 64] >> (r % 64) & 1) final_rules_[c].push_back(r);
      }
      std::stable_sort(final_rules_[c].begin(), final_rules_[c].end(),
                       [this](RuleIndex a, RuleIndex b) {
                         return rules_.entries[a].priority >
                                rules_.entries[b].priority;
                       });
    }
  }
}

std::optional<RuleIndex> RfcClassifier::classify(
    const PacketHeader& header) const {
  last_accesses_ = 0;
  if (rules_.entries.empty()) return std::nullopt;
  // Evaluate the reduction tree bottom-up over class ids.
  std::vector<std::uint32_t> class_ids(phase0_.size() + phases_.size());
  for (std::size_t i = 0; i < phase0_.size(); ++i) {
    const auto& chunk = chunk_fields_[i];
    const std::uint16_t value = header.partition16(chunk.field, chunk.partition);
    class_ids[i] = phase0_[i].class_of[value];
    ++last_accesses_;
  }
  for (std::size_t p = 0; p < phases_.size(); ++p) {
    const CrossTable& cross = phases_[p];
    class_ids[phase0_.size() + p] =
        cross.class_of[class_ids[cross.left] * cross.right_classes +
                       class_ids[cross.right]];
    ++last_accesses_;
  }
  const std::uint32_t final_class = class_ids.back();
  const auto& candidates = final_rules_[final_class];
  if (candidates.empty()) return std::nullopt;
  return candidates.front();
}

std::size_t RfcClassifier::crossproduct_entries() const {
  std::size_t entries = 0;
  for (const auto& cross : phases_) entries += cross.class_of.size();
  return entries;
}

mem::MemoryReport RfcClassifier::memory_report() const {
  mem::MemoryReport report;
  for (std::size_t i = 0; i < phase0_.size(); ++i) {
    report.add("rfc.phase0." + std::to_string(i), phase0_[i].class_of.size(),
               bits_for_max_value(phase0_[i].class_count));
  }
  for (std::size_t p = 0; p < phases_.size(); ++p) {
    report.add("rfc.cross." + std::to_string(p), phases_[p].class_of.size(),
               bits_for_max_value(phases_[p].class_count));
  }
  std::size_t final_refs = 0;
  for (const auto& rules : final_rules_) final_refs += rules.empty() ? 0 : 1;
  report.add("rfc.final", final_refs, 32);
  return report;
}

}  // namespace ofmtl::md
