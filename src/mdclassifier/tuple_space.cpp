#include "mdclassifier/tuple_space.hpp"

#include <stdexcept>

namespace ofmtl::md {

namespace {

/// Per-field prefix alternatives of one rule (ranges expand to several).
[[nodiscard]] std::vector<Prefix> field_alternatives(const FieldMatch& fm,
                                                     unsigned bits) {
  switch (fm.kind) {
    case MatchKind::kAny:
      return {Prefix{U128{}, 0, bits}};
    case MatchKind::kExact:
      return {Prefix{fm.value, bits, bits}};
    case MatchKind::kPrefix:
      return {fm.prefix};
    case MatchKind::kRange:
      return range_to_prefixes(fm.range, bits);
    case MatchKind::kMasked: {
      // TSS requires prefix-shaped masks: count leading ones, then verify.
      const U128 aligned = fm.mask << (128 - bits);
      unsigned len = 0;
      while (len < bits && ((aligned << len).hi >> 63) != 0) ++len;
      if (high_mask128(len) >> (128 - bits) != fm.mask) {
        throw std::invalid_argument("TSS: non-prefix mask unsupported");
      }
      return {Prefix{fm.value, len, bits}};
    }
  }
  throw std::logic_error("unknown MatchKind");
}

}  // namespace

TupleSpaceClassifier::TupleSpaceClassifier(RuleSet rules)
    : rules_(std::move(rules)) {
  unsigned total_bits = 0;
  for (const auto id : rules_.fields) total_bits += field_bits(id);
  if (total_bits > 128) {
    throw std::invalid_argument("TSS model supports keys up to 128 bits");
  }

  for (RuleIndex index = 0; index < rules_.entries.size(); ++index) {
    const auto& entry = rules_.entries[index];
    // Cross product of per-field prefix alternatives.
    std::vector<std::vector<Prefix>> alternatives;
    alternatives.reserve(rules_.fields.size());
    for (const auto id : rules_.fields) {
      alternatives.push_back(
          field_alternatives(entry.match.get(id), field_bits(id)));
    }
    std::vector<std::size_t> cursor(alternatives.size(), 0);
    while (true) {
      std::vector<unsigned> lengths;
      U128 key{};
      for (std::size_t f = 0; f < alternatives.size(); ++f) {
        const Prefix& prefix = alternatives[f][cursor[f]];
        lengths.push_back(prefix.length());
        const unsigned bits = field_bits(rules_.fields[f]);
        const U128 masked =
            prefix.length() == 0
                ? U128{}
                : prefix.value() & (high_mask128(prefix.length()) >> (128 - bits));
        key = (key << bits) | masked;
      }
      auto it = tuple_index_.find(lengths);
      if (it == tuple_index_.end()) {
        it = tuple_index_.emplace(lengths, tuples_.size()).first;
        tuples_.push_back(Tuple{lengths, {}});
      }
      tuples_[it->second].table[key].push_back(index);

      // Advance the cross-product cursor.
      std::size_t f = 0;
      for (; f < cursor.size(); ++f) {
        if (++cursor[f] < alternatives[f].size()) break;
        cursor[f] = 0;
      }
      if (f == cursor.size()) break;
    }
  }
}

U128 TupleSpaceClassifier::masked_key(const PacketHeader& header,
                                      const std::vector<unsigned>& lengths) const {
  U128 key{};
  for (std::size_t f = 0; f < rules_.fields.size(); ++f) {
    const unsigned bits = field_bits(rules_.fields[f]);
    const unsigned len = lengths[f];
    const U128 value = header.get(rules_.fields[f]);
    const U128 masked =
        len == 0 ? U128{} : value & (high_mask128(len) >> (128 - bits));
    key = (key << bits) | masked;
  }
  return key;
}

std::optional<RuleIndex> TupleSpaceClassifier::classify(
    const PacketHeader& header) const {
  last_accesses_ = 0;
  std::vector<RuleIndex> candidates;
  for (const auto& tuple : tuples_) {
    ++last_accesses_;  // one hash probe per tuple
    const auto it = tuple.table.find(masked_key(header, tuple.lengths));
    if (it == tuple.table.end()) continue;
    candidates.insert(candidates.end(), it->second.begin(), it->second.end());
  }
  return best_rule(rules_.entries, candidates);
}

std::size_t TupleSpaceClassifier::entry_count() const {
  std::size_t count = 0;
  for (const auto& tuple : tuples_) {
    for (const auto& [key, indices] : tuple.table) count += indices.size();
  }
  return count;
}

mem::MemoryReport TupleSpaceClassifier::memory_report() const {
  mem::MemoryReport report;
  unsigned key_bits = 0;
  for (const auto id : rules_.fields) key_bits += field_bits(id);
  report.add("tss.entries", entry_count(), key_bits + 32 /*rule id*/);
  report.add("tss.tuple_masks", tuples_.size(),
             static_cast<unsigned>(rules_.fields.size()) * 8);
  return report;
}

}  // namespace ofmtl::md
