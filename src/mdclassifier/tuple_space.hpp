// Tuple Space Search (Srinivasan et al., SIGCOMM'99) — the hashing-based
// category of Table I. Rules are grouped by their specificity tuple (the
// per-field prefix lengths); each tuple is an exact-match hash table over the
// masked key. Range fields are expanded to prefixes first (nesting them into
// tuples), which is where the category's "memory explosion" shows up.
#pragma once

#include <unordered_map>

#include "mdclassifier/classifier.hpp"
#include "net/prefix.hpp"

namespace ofmtl::md {

class TupleSpaceClassifier final : public Classifier {
 public:
  explicit TupleSpaceClassifier(RuleSet rules);

  [[nodiscard]] std::string_view name() const override { return "tss"; }
  [[nodiscard]] std::optional<RuleIndex> classify(
      const PacketHeader& header) const override;
  [[nodiscard]] mem::MemoryReport memory_report() const override;
  [[nodiscard]] std::size_t last_access_count() const override {
    return last_accesses_;
  }

  [[nodiscard]] std::size_t tuple_count() const { return tuples_.size(); }
  /// Hash entries across tuples (>= rule count due to range expansion).
  [[nodiscard]] std::size_t entry_count() const;

 private:
  struct TupleKeyHash {
    std::size_t operator()(const std::vector<unsigned>& lengths) const noexcept {
      std::size_t h = 0xCBF29CE484222325ULL;
      for (const unsigned len : lengths) h = (h ^ len) * 0x100000001B3ULL;
      return h;
    }
  };
  struct U128Hash {
    std::size_t operator()(const U128& v) const noexcept {
      return static_cast<std::size_t>(v.hi * 0x9E3779B97F4A7C15ULL ^ v.lo);
    }
  };
  struct Tuple {
    std::vector<unsigned> lengths;  // per field, in rules_.fields order
    std::unordered_map<U128, std::vector<RuleIndex>, U128Hash> table;
  };

  [[nodiscard]] U128 masked_key(const PacketHeader& header,
                                const std::vector<unsigned>& lengths) const;

  RuleSet rules_;
  std::unordered_map<std::vector<unsigned>, std::size_t, TupleKeyHash> tuple_index_;
  std::vector<Tuple> tuples_;
  mutable std::size_t last_accesses_ = 0;
};

}  // namespace ofmtl::md
