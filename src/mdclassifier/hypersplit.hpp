// HyperSplit (Qi et al.) — trie-geometric category of Table I. Binary space
// partitioning: each internal node splits one field's value range at a
// threshold; leaves hold at most `binth` rules searched linearly. Efficient
// memory, moderate lookup, complex updates (any insert may restructure the
// tree) — exactly the Table I trade-off row.
#pragma once

#include "mdclassifier/classifier.hpp"
#include "net/prefix.hpp"

namespace ofmtl::md {

struct HyperSplitConfig {
  std::size_t binth = 8;      ///< max rules per leaf
  std::size_t max_depth = 32; ///< recursion guard
};

class HyperSplitClassifier final : public Classifier {
 public:
  explicit HyperSplitClassifier(RuleSet rules, HyperSplitConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "hypersplit"; }
  [[nodiscard]] std::optional<RuleIndex> classify(
      const PacketHeader& header) const override;
  [[nodiscard]] mem::MemoryReport memory_report() const override;
  [[nodiscard]] std::size_t last_access_count() const override {
    return last_accesses_;
  }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t max_leaf_depth() const { return max_leaf_depth_; }

 private:
  /// Per-field interval of one rule ([lo, hi] over the field's value space).
  struct Box {
    std::vector<ValueRange> ranges;  // one per field, rules_.fields order
  };
  struct Node {
    bool leaf = false;
    std::uint8_t field = 0;        // split dimension (index into fields)
    std::uint64_t threshold = 0;   // go left if value <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::vector<RuleIndex> rules;  // leaf payload
  };

  std::int32_t build(std::vector<RuleIndex> active, std::vector<Box>& boxes,
                     std::size_t depth);

  RuleSet rules_;
  HyperSplitConfig config_;
  std::vector<Node> nodes_;
  std::size_t max_leaf_depth_ = 0;
  mutable std::size_t last_accesses_ = 0;
};

/// Convert a rule's FieldMatch to the [lo,hi] interval HyperSplit/HiCuts cut.
/// Masked matches are not representable as one interval and are rejected.
[[nodiscard]] ValueRange field_interval(const FieldMatch& fm, unsigned bits);

}  // namespace ofmtl::md
