#include "mdclassifier/dcfl.hpp"

namespace ofmtl::md {

namespace {

/// LookupTable identifies entries by FlowEntryId; classify() must return the
/// position in the caller's rule vector, so ids are rewritten to positions.
[[nodiscard]] std::vector<FlowEntry> reindexed(std::vector<FlowEntry> entries) {
  for (std::uint32_t i = 0; i < entries.size(); ++i) entries[i].id = i;
  return entries;
}

}  // namespace

DcflClassifier::DcflClassifier(RuleSet rules, FieldSearchConfig config)
    : original_(rules.entries),
      table_(rules.fields, reindexed(std::move(rules.entries)), config) {}

std::optional<RuleIndex> DcflClassifier::classify(
    const PacketHeader& header) const {
  // Access model: one probe per parallel algorithm + one per combination
  // stage + the action read.
  last_accesses_ = table_.index().algorithm_count() * 2;
  const FlowEntry* entry = table_.lookup(header);
  if (entry == nullptr) return std::nullopt;
  return entry->id;  // == position, by construction
}

mem::MemoryReport DcflClassifier::memory_report() const {
  return table_.memory_report("dcfl");
}

}  // namespace ofmtl::md
