// DCFL-style decomposed classifier ([11], Taylor & Turner) — the paper's own
// category, exposed through the common Classifier interface so Table I can
// rank it alongside the other families. Wraps the core LookupTable: parallel
// single-field searches with labelled unique values + progressive label
// combination.
#pragma once

#include "core/lookup_table.hpp"
#include "mdclassifier/classifier.hpp"

namespace ofmtl::md {

class DcflClassifier final : public Classifier {
 public:
  explicit DcflClassifier(RuleSet rules, FieldSearchConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "dcfl"; }
  [[nodiscard]] std::optional<RuleIndex> classify(
      const PacketHeader& header) const override;
  [[nodiscard]] mem::MemoryReport memory_report() const override;
  [[nodiscard]] std::size_t last_access_count() const override {
    return last_accesses_;
  }

  [[nodiscard]] const LookupTable& table() const { return table_; }

 private:
  std::vector<FlowEntry> original_;  // classify() reports original indices
  LookupTable table_;
  mutable std::size_t last_accesses_ = 0;
};

}  // namespace ofmtl::md
