#include "mdclassifier/hicuts.hpp"

#include <algorithm>
#include <set>

namespace ofmtl::md {

HiCutsClassifier::HiCutsClassifier(RuleSet rules, HiCutsConfig config)
    : rules_(std::move(rules)), config_(config) {
  std::vector<Region> rule_boxes;
  rule_boxes.reserve(rules_.entries.size());
  for (const auto& entry : rules_.entries) {
    Region box;
    for (const auto id : rules_.fields) {
      box.ranges.push_back(field_interval(entry.match.get(id), field_bits(id)));
    }
    rule_boxes.push_back(std::move(box));
  }
  Region universe;
  for (const auto id : rules_.fields) {
    universe.ranges.push_back({0, low_mask(field_bits(id))});
  }
  std::vector<RuleIndex> all(rules_.entries.size());
  for (RuleIndex i = 0; i < all.size(); ++i) all[i] = i;
  if (!all.empty()) build(std::move(all), rule_boxes, universe, 0);
}

std::int32_t HiCutsClassifier::build(std::vector<RuleIndex> active,
                                     const std::vector<Region>& rule_boxes,
                                     Region region, std::size_t depth) {
  const auto make_leaf = [&](std::vector<RuleIndex> rules) {
    Node node;
    node.leaf = true;
    node.rules = std::move(rules);
    std::stable_sort(node.rules.begin(), node.rules.end(),
                     [this](RuleIndex a, RuleIndex b) {
                       return rules_.entries[a].priority >
                              rules_.entries[b].priority;
                     });
    nodes_.push_back(std::move(node));
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (active.size() <= config_.binth || depth >= config_.max_depth) {
    return make_leaf(std::move(active));
  }

  // Cut the dimension with the most distinct rule endpoints in this region.
  std::size_t best_field = rules_.fields.size();
  std::size_t best_endpoints = 1;
  for (std::size_t f = 0; f < rules_.fields.size(); ++f) {
    if (region.ranges[f].span() == 0) continue;
    std::set<std::uint64_t> endpoints;
    for (const auto index : active) {
      endpoints.insert(rule_boxes[index].ranges[f].lo);
      endpoints.insert(rule_boxes[index].ranges[f].hi);
    }
    if (endpoints.size() > best_endpoints) {
      best_endpoints = endpoints.size();
      best_field = f;
    }
  }
  if (best_field == rules_.fields.size()) return make_leaf(std::move(active));

  const ValueRange& cut_range = region.ranges[best_field];
  const std::uint64_t slices = std::uint64_t{1} << config_.cut_bits;
  const std::uint64_t slice =
      std::max<std::uint64_t>(1, (cut_range.span() + 1) / slices);

  // Partition (with replication) into slices.
  std::vector<std::vector<RuleIndex>> parts(slices);
  std::size_t replicated = 0;
  for (const auto index : active) {
    const auto& rule_range = rule_boxes[index].ranges[best_field];
    for (std::uint64_t s = 0; s < slices; ++s) {
      const std::uint64_t lo = cut_range.lo + s * slice;
      const std::uint64_t hi =
          s + 1 == slices ? cut_range.hi : lo + slice - 1;
      if (rule_range.lo <= hi && rule_range.hi >= lo) {
        parts[s].push_back(index);
        ++replicated;
      }
    }
  }
  // The space-factor heuristic: give up cutting if replication explodes or
  // no slice got smaller.
  bool progress = false;
  for (const auto& part : parts) {
    if (part.size() < active.size()) progress = true;
  }
  if (!progress ||
      static_cast<double>(replicated) >
          config_.space_factor * static_cast<double>(active.size())) {
    return make_leaf(std::move(active));
  }

  const auto node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].field = static_cast<std::uint8_t>(best_field);
  nodes_[node_index].base = cut_range.lo;
  nodes_[node_index].slice = slice;
  nodes_[node_index].children.assign(slices, -1);
  for (std::uint64_t s = 0; s < slices; ++s) {
    Region child_region = region;
    const std::uint64_t lo = cut_range.lo + s * slice;
    child_region.ranges[best_field] = {
        lo, s + 1 == slices ? cut_range.hi : lo + slice - 1};
    const auto child = build(std::move(parts[s]), rule_boxes,
                             std::move(child_region), depth + 1);
    nodes_[node_index].children[s] = child;
  }
  return node_index;
}

std::optional<RuleIndex> HiCutsClassifier::classify(
    const PacketHeader& header) const {
  last_accesses_ = 0;
  if (nodes_.empty()) return std::nullopt;
  std::size_t node = 0;
  while (!nodes_[node].leaf) {
    ++last_accesses_;
    const Node& n = nodes_[node];
    const std::uint64_t value = header.get64(rules_.fields[n.field]);
    std::uint64_t index = value < n.base ? 0 : (value - n.base) / n.slice;
    if (index >= n.children.size()) index = n.children.size() - 1;
    node = static_cast<std::size_t>(n.children[index]);
  }
  for (const auto index : nodes_[node].rules) {
    ++last_accesses_;
    if (rules_.entries[index].match.matches(header)) return index;
  }
  return std::nullopt;
}

std::size_t HiCutsClassifier::replicated_rule_refs() const {
  std::size_t refs = 0;
  for (const auto& node : nodes_) {
    if (node.leaf) refs += node.rules.size();
  }
  return refs;
}

mem::MemoryReport HiCutsClassifier::memory_report() const {
  mem::MemoryReport report;
  std::size_t internal = 0, children = 0;
  for (const auto& node : nodes_) {
    if (!node.leaf) {
      ++internal;
      children += node.children.size();
    }
  }
  report.add("hicuts.internal", internal, 8 + 64 + 64);
  report.add("hicuts.child_pointers", children, bits_for_max_value(nodes_.size()));
  report.add("hicuts.leaf_rule_refs", replicated_rule_refs(), 32);
  return report;
}

}  // namespace ofmtl::md
