// Recursive Flow Classification (Gupta & McKeown, SIGCOMM'99 [10]) — the
// decomposition category of Table I. Phase 0 maps each 16-bit header chunk
// through a direct-indexed table to an equivalence-class id; later phases
// combine pairs of class ids through crossproduct tables until one id
// identifies the matching-rule set. Constant-time lookup (one memory access
// per table), at the price of potentially exploding crossproduct tables —
// Table I's "fast lookup / memory explosion" row.
#pragma once

#include "mdclassifier/classifier.hpp"

namespace ofmtl::md {

class RfcClassifier final : public Classifier {
 public:
  explicit RfcClassifier(RuleSet rules);

  [[nodiscard]] std::string_view name() const override { return "rfc"; }
  [[nodiscard]] std::optional<RuleIndex> classify(
      const PacketHeader& header) const override;
  [[nodiscard]] mem::MemoryReport memory_report() const override;
  [[nodiscard]] std::size_t last_access_count() const override {
    return last_accesses_;
  }

  [[nodiscard]] std::size_t phase0_tables() const { return chunk_fields_.size(); }
  [[nodiscard]] std::size_t crossproduct_entries() const;

 private:
  /// Matching-rule bitset, the equivalence-class key.
  using RuleMask = std::vector<std::uint64_t>;
  struct MaskHash {
    std::size_t operator()(const RuleMask& mask) const noexcept {
      std::size_t h = 0xCBF29CE484222325ULL;
      for (const auto word : mask) h = (h ^ word) * 0x100000001B3ULL;
      return h;
    }
  };

  struct Phase0Table {
    std::vector<std::uint32_t> class_of;  // 2^16 entries
    std::size_t class_count = 0;
  };
  struct CrossTable {
    std::size_t left = 0;     // index of the left input table (phase order)
    std::size_t right = 0;    // right input
    std::size_t left_classes = 0;
    std::size_t right_classes = 0;
    std::vector<std::uint32_t> class_of;  // left_classes * right_classes
    std::size_t class_count = 0;
  };

  RuleSet rules_;
  struct ChunkRef {
    FieldId field;
    unsigned partition;  // 16-bit partition index within the field
  };
  std::vector<ChunkRef> chunk_fields_;
  std::vector<Phase0Table> phase0_;
  std::vector<CrossTable> phases_;
  // Final class id -> candidate rules (sorted best-first).
  std::vector<std::vector<RuleIndex>> final_rules_;
  mutable std::size_t last_accesses_ = 0;
};

}  // namespace ofmtl::md
