#include "mdclassifier/linear.hpp"

#include <algorithm>
#include <numeric>

namespace ofmtl::md {

LinearClassifier::LinearClassifier(RuleSet rules) : rules_(std::move(rules)) {
  order_.resize(rules_.entries.size());
  std::iota(order_.begin(), order_.end(), 0U);
  std::stable_sort(order_.begin(), order_.end(),
                   [this](RuleIndex a, RuleIndex b) {
                     return rules_.entries[a].priority > rules_.entries[b].priority;
                   });
}

std::optional<RuleIndex> LinearClassifier::classify(
    const PacketHeader& header) const {
  last_accesses_ = 0;
  for (const auto index : order_) {
    ++last_accesses_;
    if (rules_.entries[index].match.matches(header)) return index;
  }
  return std::nullopt;
}

mem::MemoryReport LinearClassifier::memory_report() const {
  mem::MemoryReport report;
  unsigned rule_bits = 0;
  for (const auto id : rules_.fields) rule_bits += 2 * field_bits(id) + 2;
  report.add("linear.rules", rules_.entries.size(), rule_bits + 16 /*priority*/);
  return report;
}

}  // namespace ofmtl::md
