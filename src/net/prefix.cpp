#include "net/prefix.hpp"

#include <cstdio>

namespace ofmtl {

std::string Prefix::to_string() const {
  char buffer[64];
  if (width_ > 64) {
    const U128 v = value();
    std::snprintf(buffer, sizeof buffer, "%016llx%016llx/%u",
                  static_cast<unsigned long long>(v.hi),
                  static_cast<unsigned long long>(v.lo), length_);
  } else {
    std::snprintf(buffer, sizeof buffer, "%llx/%u",
                  static_cast<unsigned long long>(value64()), length_);
  }
  return buffer;
}

std::vector<Prefix> range_to_prefixes(const ValueRange& range, unsigned width) {
  if (width > 63) throw std::invalid_argument("range_to_prefixes: width > 63");
  if (range.lo > range.hi || range.hi > low_mask(width)) {
    throw std::invalid_argument("range_to_prefixes: bad range");
  }
  std::vector<Prefix> prefixes;
  std::uint64_t lo = range.lo;
  const std::uint64_t hi = range.hi;
  // Greedy: at each step emit the largest aligned power-of-two block starting
  // at `lo` that does not overshoot `hi`.
  while (true) {
    unsigned block_bits = 0;
    while (block_bits < width) {
      const std::uint64_t size = std::uint64_t{1} << (block_bits + 1);
      const bool aligned = (lo & (size - 1)) == 0;
      const bool fits = lo + size - 1 <= hi;
      if (!aligned || !fits) break;
      ++block_bits;
    }
    prefixes.push_back(Prefix::from_value(lo, width - block_bits, width));
    const std::uint64_t block = std::uint64_t{1} << block_bits;
    if (hi - lo < block) break;  // consumed [lo, lo+block-1] == tail
    lo += block;
  }
  return prefixes;
}

}  // namespace ofmtl
