#include "net/packet.hpp"

#include <stdexcept>

namespace ofmtl {

namespace {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u48(std::uint64_t v) {
    u16(static_cast<std::uint16_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void u128(const U128& v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v.hi >> (56 - 8 * i)));
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v.lo >> (56 - 8 * i)));
  }

 private:
  std::vector<std::uint8_t>& out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    require(1);
    return bytes_[pos_++];
  }
  [[nodiscard]] std::uint16_t u16() {
    const auto hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
  }
  [[nodiscard]] std::uint32_t u32() {
    const auto hi = u16();
    return (std::uint32_t{hi} << 16) | u16();
  }
  [[nodiscard]] std::uint64_t u48() {
    const auto hi = u16();
    return (std::uint64_t{hi} << 32) | u32();
  }
  [[nodiscard]] U128 u128() {
    std::uint64_t hi = 0, lo = 0;
    for (int i = 0; i < 8; ++i) hi = (hi << 8) | u8();
    for (int i = 0; i < 8; ++i) lo = (lo << 8) | u8();
    return {hi, lo};
  }
  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] std::span<const std::uint8_t> rest() const {
    return bytes_.subspan(pos_);
  }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > bytes_.size()) {
      throw std::invalid_argument("truncated packet");
    }
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

[[nodiscard]] bool has_l4_ports(std::uint8_t proto) {
  return proto == static_cast<std::uint8_t>(IpProto::kTcp) ||
         proto == static_cast<std::uint8_t>(IpProto::kUdp);
}

}  // namespace

std::vector<std::uint8_t> serialize_packet(const PacketSpec& spec) {
  std::vector<std::uint8_t> bytes;
  ByteWriter w{bytes};
  w.u48(spec.eth_dst.value());
  w.u48(spec.eth_src.value());
  if (spec.vlan_id) {
    w.u16(static_cast<std::uint16_t>(EtherType::kVlan));
    const std::uint16_t pcp = spec.vlan_pcp.value_or(0) & 0x7;
    w.u16(static_cast<std::uint16_t>((pcp << 13) | (*spec.vlan_id & 0x0FFF)));
  }
  if (spec.mpls_label) {
    w.u16(static_cast<std::uint16_t>(EtherType::kMplsUnicast));
    // Label(20) | TC(3) | S(1)=1 | TTL(8)
    w.u32(((*spec.mpls_label & 0xFFFFF) << 12) | (1U << 8) | 64U);
  } else {
    w.u16(spec.eth_type);
  }
  if (spec.ipv4_src && spec.ipv4_dst) {
    const std::uint16_t l4 = has_l4_ports(spec.ip_proto) ? 8 : 0;
    const auto total =
        static_cast<std::uint16_t>(20 + l4 + spec.payload.size());
    w.u8(0x45);  // version 4, IHL 5
    w.u8(spec.ip_tos);
    w.u16(total);
    w.u16(0);          // identification
    w.u16(0x4000);     // flags: DF
    w.u8(64);          // TTL
    w.u8(spec.ip_proto);
    w.u16(0);          // checksum (not modelled)
    w.u32(spec.ipv4_src->value());
    w.u32(spec.ipv4_dst->value());
  } else if (spec.ipv6_src && spec.ipv6_dst) {
    const std::uint16_t l4 = has_l4_ports(spec.ip_proto) ? 8 : 0;
    w.u32((6U << 28) | (std::uint32_t{spec.ip_tos} << 20));
    w.u16(static_cast<std::uint16_t>(l4 + spec.payload.size()));
    w.u8(spec.ip_proto);  // next header
    w.u8(64);             // hop limit
    w.u128(spec.ipv6_src->value());
    w.u128(spec.ipv6_dst->value());
  }
  if (has_l4_ports(spec.ip_proto) && spec.src_port && spec.dst_port) {
    w.u16(*spec.src_port);
    w.u16(*spec.dst_port);
    w.u16(0);  // UDP length / TCP seq stub
    w.u16(0);
  }
  bytes.insert(bytes.end(), spec.payload.begin(), spec.payload.end());
  return bytes;
}

PacketHeader header_from_spec(const PacketSpec& spec, std::uint32_t in_port) {
  PacketHeader h;
  h.set_in_port(in_port);
  h.set_eth_src(spec.eth_src);
  h.set_eth_dst(spec.eth_dst);
  h.set_eth_type(spec.eth_type);
  if (spec.vlan_id) h.set_vlan_id(*spec.vlan_id);
  if (spec.vlan_pcp) h.set_vlan_pcp(*spec.vlan_pcp);
  if (spec.mpls_label) h.set_mpls_label(*spec.mpls_label);
  if (spec.ipv4_src) h.set_ipv4_src(*spec.ipv4_src);
  if (spec.ipv4_dst) h.set_ipv4_dst(*spec.ipv4_dst);
  if (spec.ipv6_src) h.set_ipv6_src(*spec.ipv6_src);
  if (spec.ipv6_dst) h.set_ipv6_dst(*spec.ipv6_dst);
  if (spec.ipv4_src || spec.ipv6_src) {
    h.set_ip_proto(spec.ip_proto);
    h.set_ip_tos(spec.ip_tos);
  }
  if (spec.src_port) h.set_src_port(*spec.src_port);
  if (spec.dst_port) h.set_dst_port(*spec.dst_port);
  return h;
}

ParsedPacket parse_packet(std::span<const std::uint8_t> bytes,
                          std::uint32_t in_port) {
  ByteReader r{bytes};
  PacketSpec spec;
  spec.eth_dst = MacAddress{r.u48()};
  spec.eth_src = MacAddress{r.u48()};
  std::uint16_t ether_type = r.u16();
  if (ether_type == static_cast<std::uint16_t>(EtherType::kVlan)) {
    const std::uint16_t tci = r.u16();
    spec.vlan_id = tci & 0x0FFF;
    spec.vlan_pcp = static_cast<std::uint8_t>(tci >> 13);
    ether_type = r.u16();
  }
  if (ether_type == static_cast<std::uint16_t>(EtherType::kMplsUnicast)) {
    const std::uint32_t shim = r.u32();
    spec.mpls_label = shim >> 12;
    // The codec emits bottom-of-stack IPv4 under MPLS; the inner EtherType
    // is implicit, so the spec's eth_type stays 0 (matches the serializer).
    ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
    spec.eth_type = 0;
  } else {
    spec.eth_type = ether_type;
  }
  if (ether_type == static_cast<std::uint16_t>(EtherType::kIpv4) &&
      r.remaining() >= 20) {
    const std::uint8_t version_ihl = r.u8();
    if ((version_ihl >> 4) != 4) throw std::invalid_argument("bad IPv4 version");
    spec.ip_tos = r.u8();
    (void)r.u16();  // total length
    (void)r.u16();  // identification
    (void)r.u16();  // flags/fragment
    (void)r.u8();   // TTL
    spec.ip_proto = r.u8();
    (void)r.u16();  // checksum
    spec.ipv4_src = Ipv4Address{r.u32()};
    spec.ipv4_dst = Ipv4Address{r.u32()};
    const unsigned ihl = (version_ihl & 0xF) * 4U;
    if (ihl > 20) r.skip(ihl - 20);
  } else if (ether_type == static_cast<std::uint16_t>(EtherType::kIpv6) &&
             r.remaining() >= 40) {
    const std::uint32_t vtf = r.u32();
    if ((vtf >> 28) != 6) throw std::invalid_argument("bad IPv6 version");
    spec.ip_tos = static_cast<std::uint8_t>((vtf >> 20) & 0xFF);
    (void)r.u16();  // payload length
    spec.ip_proto = r.u8();
    (void)r.u8();   // hop limit
    spec.ipv6_src = Ipv6Address{r.u128()};
    spec.ipv6_dst = Ipv6Address{r.u128()};
  }
  if (has_l4_ports(spec.ip_proto) && r.remaining() >= 8) {
    spec.src_port = r.u16();
    spec.dst_port = r.u16();
    r.skip(4);
  }
  const auto rest = r.rest();
  spec.payload.assign(rest.begin(), rest.end());
  return ParsedPacket{spec, header_from_spec(spec, in_port)};
}

}  // namespace ofmtl
