#include "net/packet.hpp"

#include <algorithm>
#include <stdexcept>

namespace ofmtl {

namespace {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u48(std::uint64_t v) {
    u16(static_cast<std::uint16_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void u128(const U128& v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v.hi >> (56 - 8 * i)));
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v.lo >> (56 - 8 * i)));
  }

 private:
  std::vector<std::uint8_t>& out_;
};

// Non-throwing cursor over wire bytes: an out-of-bounds read sets a sticky
// failure flag (and yields zeros) instead of throwing, so the batched trace
// front end can reject a malformed lane without unwinding. parse_packet
// turns the flag back into std::invalid_argument for its callers.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    if (!require(1)) return 0;
    return bytes_[pos_++];
  }
  [[nodiscard]] std::uint16_t u16() {
    const auto hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
  }
  [[nodiscard]] std::uint32_t u32() {
    const auto hi = u16();
    return (std::uint32_t{hi} << 16) | u16();
  }
  [[nodiscard]] std::uint64_t u48() {
    const auto hi = u16();
    return (std::uint64_t{hi} << 32) | u32();
  }
  [[nodiscard]] U128 u128() {
    std::uint64_t hi = 0, lo = 0;
    for (int i = 0; i < 8; ++i) hi = (hi << 8) | u8();
    for (int i = 0; i < 8; ++i) lo = (lo << 8) | u8();
    return {hi, lo};
  }
  void skip(std::size_t n) {
    if (require(n)) pos_ += n;
  }
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] std::span<const std::uint8_t> rest() const {
    return bytes_.subspan(pos_);
  }

 private:
  [[nodiscard]] bool require(std::size_t n) {
    if (pos_ + n > bytes_.size()) {
      ok_ = false;
      return false;
    }
    return ok_;
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

[[nodiscard]] bool has_l4_ports(std::uint8_t proto) {
  return proto == static_cast<std::uint8_t>(IpProto::kTcp) ||
         proto == static_cast<std::uint8_t>(IpProto::kUdp);
}

// The layer walk shared by parse_packet and the allocation-free batched
// entry point: fills every spec field except the payload. Returns nullptr
// on success, a static error string on malformed input. Never throws.
//
// `snap_slack` is how many trailing on-wire bytes the capture cut off
// (pcap orig_len - incl_len; 0 for a complete frame). L3 length fields are
// validated against the wire (capture + slack) so a snap-length-capped
// record parses gracefully — snapped-off fields are absent, not errors —
// while a frame whose lengths overrun the actual wire stays malformed.
[[nodiscard]] const char* parse_spec_layers(ByteReader& r, PacketSpec& spec,
                                            std::size_t snap_slack) {
  spec.eth_dst = MacAddress{r.u48()};
  spec.eth_src = MacAddress{r.u48()};
  std::uint16_t ether_type = r.u16();
  if (!r.ok()) return "truncated packet";

  unsigned vlan_tags = 0;
  while (ether_type == static_cast<std::uint16_t>(EtherType::kVlan)) {
    if (++vlan_tags > kMaxVlanDepth) return "VLAN stack too deep";
    const std::uint16_t tci = r.u16();
    ether_type = r.u16();
    if (!r.ok()) return "truncated VLAN tag";
    if (vlan_tags == 1) {  // OpenFlow matches the outermost tag
      spec.vlan_id = tci & 0x0FFF;
      spec.vlan_pcp = static_cast<std::uint8_t>(tci >> 13);
    }
  }

  if (ether_type == static_cast<std::uint16_t>(EtherType::kMplsUnicast)) {
    unsigned depth = 0;
    bool bottom = false;
    while (!bottom) {
      if (++depth > kMaxMplsDepth) return "MPLS stack too deep";
      const std::uint32_t shim = r.u32();
      if (!r.ok()) return "truncated MPLS shim";
      if (depth == 1) spec.mpls_label = shim >> 12;  // outermost label
      bottom = ((shim >> 8) & 1) != 0;
    }
    // The codec emits bottom-of-stack IPv4 under MPLS; the inner EtherType
    // is implicit, so the spec's eth_type stays 0 (matches the serializer).
    ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
    spec.eth_type = 0;
  } else {
    spec.eth_type = ether_type;
  }

  std::size_t l4_claimed = 0;  // L4 bytes the L3 length fields account for
  if (ether_type == static_cast<std::uint16_t>(EtherType::kIpv4) &&
      r.remaining() >= 20) {
    const std::size_t l3_avail = r.remaining();
    const std::uint8_t version_ihl = r.u8();
    if ((version_ihl >> 4) != 4) return "bad IPv4 version";
    const std::size_t ihl_bytes = (version_ihl & 0xF) * 4U;
    if (ihl_bytes < 20) return "bad IPv4 IHL";
    spec.ip_tos = r.u8();
    const std::uint16_t total_len = r.u16();
    if (total_len < ihl_bytes) return "IPv4 total length below header";
    if (total_len > l3_avail + snap_slack) return "IPv4 total length beyond wire";
    (void)r.u16();  // identification
    (void)r.u16();  // flags/fragment
    (void)r.u8();   // TTL
    spec.ip_proto = r.u8();
    (void)r.u16();  // checksum
    spec.ipv4_src = Ipv4Address{r.u32()};
    spec.ipv4_dst = Ipv4Address{r.u32()};
    if (ihl_bytes > 20) {
      // Options the capture snapped off just end the walk (no ports left
      // to read); on a complete frame the skip always fits, because
      // total_len <= l3_avail was checked above.
      r.skip(std::min(ihl_bytes - 20, r.remaining()));
    }
    l4_claimed = total_len - ihl_bytes;
  } else if (ether_type == static_cast<std::uint16_t>(EtherType::kIpv6) &&
             r.remaining() >= 40) {
    const std::size_t l3_avail = r.remaining();
    const std::uint32_t vtf = r.u32();
    if ((vtf >> 28) != 6) return "bad IPv6 version";
    spec.ip_tos = static_cast<std::uint8_t>((vtf >> 20) & 0xFF);
    const std::uint16_t payload_len = r.u16();
    if (payload_len > l3_avail + snap_slack - 40) {
      return "IPv6 payload length beyond wire";
    }
    spec.ip_proto = r.u8();
    (void)r.u8();  // hop limit
    spec.ipv6_src = Ipv6Address{r.u128()};
    spec.ipv6_dst = Ipv6Address{r.u128()};
    l4_claimed = payload_len;
  }

  // Ports are attributed only when the L3 length fields actually cover
  // them — trailing bytes beyond the claimed length are payload, not an L4
  // header (the "inner-header overrun" case).
  if ((spec.ipv4_src || spec.ipv6_src) && has_l4_ports(spec.ip_proto) &&
      l4_claimed >= 8 && r.remaining() >= 8) {
    spec.src_port = r.u16();
    spec.dst_port = r.u16();
    r.skip(4);
  }
  return r.ok() ? nullptr : "truncated packet";
}

}  // namespace

std::vector<std::uint8_t> serialize_packet(const PacketSpec& spec) {
  std::vector<std::uint8_t> bytes;
  ByteWriter w{bytes};
  w.u48(spec.eth_dst.value());
  w.u48(spec.eth_src.value());
  if (spec.vlan_id) {
    w.u16(static_cast<std::uint16_t>(EtherType::kVlan));
    const std::uint16_t pcp = spec.vlan_pcp.value_or(0) & 0x7;
    w.u16(static_cast<std::uint16_t>((pcp << 13) | (*spec.vlan_id & 0x0FFF)));
  }
  if (spec.mpls_label) {
    w.u16(static_cast<std::uint16_t>(EtherType::kMplsUnicast));
    // Label(20) | TC(3) | S(1)=1 | TTL(8)
    w.u32(((*spec.mpls_label & 0xFFFFF) << 12) | (1U << 8) | 64U);
  } else {
    w.u16(spec.eth_type);
  }
  // The L4 block below is emitted only when the ports are actually set, so
  // the length fields must count it under the same condition (a TCP proto
  // with no ports used to claim 8 phantom bytes, which the hardened parser
  // rightly rejects as an overrun).
  const bool emits_l4 =
      has_l4_ports(spec.ip_proto) && spec.src_port && spec.dst_port;
  if (spec.ipv4_src && spec.ipv4_dst) {
    const std::uint16_t l4 = emits_l4 ? 8 : 0;
    const auto total =
        static_cast<std::uint16_t>(20 + l4 + spec.payload.size());
    w.u8(0x45);  // version 4, IHL 5
    w.u8(spec.ip_tos);
    w.u16(total);
    w.u16(0);          // identification
    w.u16(0x4000);     // flags: DF
    w.u8(64);          // TTL
    w.u8(spec.ip_proto);
    w.u16(0);          // checksum (not modelled)
    w.u32(spec.ipv4_src->value());
    w.u32(spec.ipv4_dst->value());
  } else if (spec.ipv6_src && spec.ipv6_dst) {
    const std::uint16_t l4 = emits_l4 ? 8 : 0;
    w.u32((6U << 28) | (std::uint32_t{spec.ip_tos} << 20));
    w.u16(static_cast<std::uint16_t>(l4 + spec.payload.size()));
    w.u8(spec.ip_proto);  // next header
    w.u8(64);             // hop limit
    w.u128(spec.ipv6_src->value());
    w.u128(spec.ipv6_dst->value());
  }
  if (emits_l4) {
    w.u16(*spec.src_port);
    w.u16(*spec.dst_port);
    w.u16(0);  // UDP length / TCP seq stub
    w.u16(0);
  }
  bytes.insert(bytes.end(), spec.payload.begin(), spec.payload.end());
  return bytes;
}

PacketHeader header_from_spec(const PacketSpec& spec, std::uint32_t in_port) {
  PacketHeader h;
  h.set_in_port(in_port);
  h.set_eth_src(spec.eth_src);
  h.set_eth_dst(spec.eth_dst);
  h.set_eth_type(spec.eth_type);
  if (spec.vlan_id) h.set_vlan_id(*spec.vlan_id);
  if (spec.vlan_pcp) h.set_vlan_pcp(*spec.vlan_pcp);
  if (spec.mpls_label) h.set_mpls_label(*spec.mpls_label);
  if (spec.ipv4_src) h.set_ipv4_src(*spec.ipv4_src);
  if (spec.ipv4_dst) h.set_ipv4_dst(*spec.ipv4_dst);
  if (spec.ipv6_src) h.set_ipv6_src(*spec.ipv6_src);
  if (spec.ipv6_dst) h.set_ipv6_dst(*spec.ipv6_dst);
  if (spec.ipv4_src || spec.ipv6_src) {
    h.set_ip_proto(spec.ip_proto);
    h.set_ip_tos(spec.ip_tos);
  }
  if (spec.src_port) h.set_src_port(*spec.src_port);
  if (spec.dst_port) h.set_dst_port(*spec.dst_port);
  return h;
}

ParsedPacket parse_packet(std::span<const std::uint8_t> bytes,
                          std::uint32_t in_port) {
  ByteReader r{bytes};
  PacketSpec spec;
  if (const char* error = parse_spec_layers(r, spec, /*snap_slack=*/0)) {
    throw std::invalid_argument(error);
  }
  const auto rest = r.rest();
  spec.payload.assign(rest.begin(), rest.end());
  return ParsedPacket{spec, header_from_spec(spec, in_port)};
}

bool parse_packet_header(std::span<const std::uint8_t> bytes,
                         std::uint32_t in_port, PacketHeader& out,
                         std::size_t wire_len) noexcept {
  ByteReader r{bytes};
  PacketSpec spec;  // payload stays empty: a stack object, no allocation
  const std::size_t slack = wire_len > bytes.size() ? wire_len - bytes.size() : 0;
  if (parse_spec_layers(r, spec, slack) != nullptr) return false;
  out = header_from_spec(spec, in_port);
  return true;
}

PacketSpec spec_from_header(const PacketHeader& h) {
  PacketSpec spec;
  spec.eth_src =
      MacAddress{h.has(FieldId::kEthSrc) ? h.get64(FieldId::kEthSrc) : 0};
  spec.eth_dst =
      MacAddress{h.has(FieldId::kEthDst) ? h.get64(FieldId::kEthDst) : 0};
  if (h.has(FieldId::kVlanId)) {
    // Wire VID is 12 bits (the header field keeps 13 for the OpenFlow
    // PRESENT bit); an emitted tag always carries a PCP.
    spec.vlan_id = static_cast<std::uint16_t>(h.get64(FieldId::kVlanId)) & 0x0FFF;
    spec.vlan_pcp =
        h.has(FieldId::kVlanPcp)
            ? static_cast<std::uint8_t>(h.get64(FieldId::kVlanPcp) & 0x7)
            : std::uint8_t{0};
  }

  const bool v4 = h.has(FieldId::kIpv4Src) || h.has(FieldId::kIpv4Dst);
  // The serializer prefers IPv4 when both families are present.
  const bool v6 = !v4 && (h.has(FieldId::kIpv6Src) || h.has(FieldId::kIpv6Dst));
  if (h.has(FieldId::kMplsLabel) && !v6) {
    // The codec's MPLS payload is IPv4 with an implicit inner EtherType.
    spec.mpls_label =
        static_cast<std::uint32_t>(h.get64(FieldId::kMplsLabel)) & 0xFFFFF;
    spec.eth_type = 0;
  } else if (v4) {
    spec.eth_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  } else if (v6) {
    spec.eth_type = static_cast<std::uint16_t>(EtherType::kIpv6);
  } else if (h.has(FieldId::kEthType)) {
    const auto type = static_cast<std::uint16_t>(h.get64(FieldId::kEthType));
    // A layer-announcing EtherType with no matching layer would derail the
    // parser into the (absent) tag/shim bytes; clear it.
    const bool announces_layer =
        type == static_cast<std::uint16_t>(EtherType::kVlan) ||
        type == static_cast<std::uint16_t>(EtherType::kMplsUnicast);
    spec.eth_type = announces_layer ? 0 : type;
  }

  if (v4) {
    spec.ipv4_src = Ipv4Address{static_cast<std::uint32_t>(
        h.has(FieldId::kIpv4Src) ? h.get64(FieldId::kIpv4Src) : 0)};
    spec.ipv4_dst = Ipv4Address{static_cast<std::uint32_t>(
        h.has(FieldId::kIpv4Dst) ? h.get64(FieldId::kIpv4Dst) : 0)};
  } else if (v6) {
    spec.ipv6_src = Ipv6Address{h.has(FieldId::kIpv6Src)
                                    ? h.get(FieldId::kIpv6Src)
                                    : U128{}};
    spec.ipv6_dst = Ipv6Address{h.has(FieldId::kIpv6Dst)
                                    ? h.get(FieldId::kIpv6Dst)
                                    : U128{}};
  }
  if (v4 || v6) {
    spec.ip_proto = h.has(FieldId::kIpProto)
                        ? static_cast<std::uint8_t>(h.get64(FieldId::kIpProto))
                        : std::uint8_t{0};
    spec.ip_tos = h.has(FieldId::kIpTos)
                      ? static_cast<std::uint8_t>(h.get64(FieldId::kIpTos) & 0xFF)
                      : std::uint8_t{0};
    if (has_l4_ports(spec.ip_proto) &&
        (h.has(FieldId::kSrcPort) || h.has(FieldId::kDstPort))) {
      spec.src_port = static_cast<std::uint16_t>(
          h.has(FieldId::kSrcPort) ? h.get64(FieldId::kSrcPort) : 0);
      spec.dst_port = static_cast<std::uint16_t>(
          h.has(FieldId::kDstPort) ? h.get64(FieldId::kDstPort) : 0);
    }
  }
  return spec;
}

PacketHeader canonical_wire_header(const PacketHeader& header,
                                   std::uint32_t in_port) {
  return header_from_spec(spec_from_header(header), in_port);
}

}  // namespace ofmtl
