#include "net/addresses.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace ofmtl {

namespace {

[[nodiscard]] std::uint64_t parse_hex_byte(std::string_view text) {
  std::uint64_t value = 0;
  const auto result = std::from_chars(text.data(), text.data() + text.size(), value, 16);
  if (result.ec != std::errc{} || result.ptr != text.data() + text.size()) {
    throw std::invalid_argument("bad hex byte: " + std::string(text));
  }
  return value;
}

}  // namespace

MacAddress MacAddress::parse(std::string_view text) {
  // Accepts "aa:bb:cc:dd:ee:ff".
  std::uint64_t value = 0;
  std::size_t start = 0;
  int bytes = 0;
  for (; bytes < 6; ++bytes) {
    const std::size_t end = (bytes == 5) ? text.size() : text.find(':', start);
    if (end == std::string_view::npos) {
      throw std::invalid_argument("bad MAC address: " + std::string(text));
    }
    value = (value << 8) | parse_hex_byte(text.substr(start, end - start));
    start = end + 1;
  }
  return MacAddress{value};
}

std::string MacAddress::to_string() const {
  char buffer[18];
  std::snprintf(buffer, sizeof buffer, "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>((value_ >> 40) & 0xFF),
                static_cast<unsigned>((value_ >> 32) & 0xFF),
                static_cast<unsigned>((value_ >> 24) & 0xFF),
                static_cast<unsigned>((value_ >> 16) & 0xFF),
                static_cast<unsigned>((value_ >> 8) & 0xFF),
                static_cast<unsigned>(value_ & 0xFF));
  return buffer;
}

Ipv4Address Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  std::size_t start = 0;
  for (int octet = 0; octet < 4; ++octet) {
    const std::size_t end = (octet == 3) ? text.size() : text.find('.', start);
    if (end == std::string_view::npos) {
      throw std::invalid_argument("bad IPv4 address: " + std::string(text));
    }
    unsigned part = 0;
    const auto piece = text.substr(start, end - start);
    const auto result =
        std::from_chars(piece.data(), piece.data() + piece.size(), part, 10);
    if (result.ec != std::errc{} || result.ptr != piece.data() + piece.size() ||
        part > 255) {
      throw std::invalid_argument("bad IPv4 octet: " + std::string(piece));
    }
    value = (value << 8) | part;
    start = end + 1;
  }
  return Ipv4Address{value};
}

std::string Ipv4Address::to_string() const {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "%u.%u.%u.%u", (value_ >> 24) & 0xFF,
                (value_ >> 16) & 0xFF, (value_ >> 8) & 0xFF, value_ & 0xFF);
  return buffer;
}

std::string Ipv6Address::to_string() const {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%x:%x:%x:%x:%x:%x:%x:%x", partition16(0),
                partition16(1), partition16(2), partition16(3), partition16(4),
                partition16(5), partition16(6), partition16(7));
  return buffer;
}

}  // namespace ofmtl
