#include "net/header.hpp"

#include <sstream>

namespace ofmtl {

std::string PacketHeader::to_string() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& info : field_registry()) {
    if (!has(info.id)) continue;
    if (!first) out << ", ";
    first = false;
    out << info.name << "=";
    if (info.bits > 64) {
      out << std::hex << get(info.id).hi << get(info.id).lo << std::dec;
    } else {
      out << get64(info.id);
    }
  }
  out << "}";
  return out.str();
}

}  // namespace ofmtl
