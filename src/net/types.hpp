// Basic value types and bit utilities shared across the library.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>

namespace ofmtl {

/// Number of bits in one byte; used when sizing field layouts.
inline constexpr std::size_t kBitsPerByte = 8;

/// Ceiling of log2(n) for n >= 1: the number of bits needed to address n
/// distinct slots. ceil_log2(1) == 0.
[[nodiscard]] constexpr unsigned ceil_log2(std::uint64_t n) {
  if (n <= 1) return 0;
  unsigned bits = 0;
  std::uint64_t capacity = 1;
  while (capacity < n) {
    capacity <<= 1U;
    ++bits;
  }
  return bits;
}

/// Bit width needed to store values in [0, max_value].
[[nodiscard]] constexpr unsigned bits_for_max_value(std::uint64_t max_value) {
  unsigned bits = 1;
  while (max_value >> bits != 0) ++bits;
  return bits;
}

/// Mask with the lowest `bits` bits set (bits <= 64).
[[nodiscard]] constexpr std::uint64_t low_mask(unsigned bits) {
  if (bits >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bits) - 1;
}

/// 128-bit unsigned integer built from two 64-bit halves. Only the operations
/// the lookup structures need are provided (comparison, shifting, masking).
/// Written in ISO C++ rather than relying on the non-standard __int128.
struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  constexpr U128() = default;
  constexpr U128(std::uint64_t high, std::uint64_t low) : hi(high), lo(low) {}
  explicit constexpr U128(std::uint64_t low) : hi(0), lo(low) {}

  friend constexpr auto operator<=>(const U128&, const U128&) = default;

  [[nodiscard]] constexpr U128 operator&(const U128& other) const {
    return {hi & other.hi, lo & other.lo};
  }
  [[nodiscard]] constexpr U128 operator|(const U128& other) const {
    return {hi | other.hi, lo | other.lo};
  }
  [[nodiscard]] constexpr U128 operator^(const U128& other) const {
    return {hi ^ other.hi, lo ^ other.lo};
  }
  [[nodiscard]] constexpr U128 operator~() const { return {~hi, ~lo}; }

  [[nodiscard]] constexpr U128 operator<<(unsigned n) const {
    if (n == 0) return *this;
    if (n >= 128) return {};
    if (n >= 64) return {lo << (n - 64), 0};
    return {(hi << n) | (lo >> (64 - n)), lo << n};
  }
  [[nodiscard]] constexpr U128 operator>>(unsigned n) const {
    if (n == 0) return *this;
    if (n >= 128) return {};
    if (n >= 64) return {0, hi >> (n - 64)};
    return {hi >> n, (lo >> n) | (hi << (64 - n))};
  }

  /// Extract `width` bits starting at bit position `msb_offset` from the most
  /// significant end (offset 0 = top bit). width <= 64.
  [[nodiscard]] constexpr std::uint64_t bits_from_top(unsigned msb_offset,
                                                      unsigned width) const {
    const unsigned shift = 128 - msb_offset - width;
    return ((*this >> shift).lo) & low_mask(width);
  }
};

/// Mask whose highest `length` bits (of a 128-bit value) are set.
[[nodiscard]] constexpr U128 high_mask128(unsigned length) {
  if (length == 0) return {};
  if (length >= 128) return {~std::uint64_t{0}, ~std::uint64_t{0}};
  return (~U128{}) << (128 - length);
}

/// Mask whose highest `length` bits of a `width`-bit value are set, expressed
/// in the low `width` bits of the result.
[[nodiscard]] constexpr std::uint64_t high_mask(unsigned width, unsigned length) {
  if (length == 0) return 0;
  if (length > width) throw std::invalid_argument("prefix longer than field");
  return (low_mask(length) << (width - length)) & low_mask(width);
}

}  // namespace ofmtl
