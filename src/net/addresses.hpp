// Strongly typed network addresses: MAC (48-bit), IPv4 (32-bit), IPv6 (128-bit).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "net/types.hpp"

namespace ofmtl {

/// 48-bit IEEE 802 MAC address. The top 24 bits are the Organizationally
/// Unique Identifier (OUI), the bottom 24 bits are NIC specific — a structure
/// the paper's filter analysis (Section III.C) relies on.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::uint64_t value) : value_(value & low_mask(48)) {}

  [[nodiscard]] static MacAddress parse(std::string_view text);

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr std::uint32_t oui() const {
    return static_cast<std::uint32_t>(value_ >> 24);
  }
  [[nodiscard]] constexpr std::uint32_t nic() const {
    return static_cast<std::uint32_t>(value_ & low_mask(24));
  }

  /// 16-bit partition as used throughout the paper: index 0 is the highest
  /// 16 bits, index 2 the lowest.
  [[nodiscard]] constexpr std::uint16_t partition16(unsigned index) const {
    return static_cast<std::uint16_t>((value_ >> (32 - 16 * index)) & 0xFFFF);
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const MacAddress&, const MacAddress&) = default;

 private:
  std::uint64_t value_ = 0;
};

/// 32-bit IPv4 address in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  [[nodiscard]] static Ipv4Address parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  /// 16-bit partition: index 0 is the high half (network side), index 1 the
  /// low half (host side) — matching Table IV's column split.
  [[nodiscard]] constexpr std::uint16_t partition16(unsigned index) const {
    return static_cast<std::uint16_t>((value_ >> (16 - 16 * index)) & 0xFFFF);
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4Address&, const Ipv4Address&) = default;

 private:
  std::uint32_t value_ = 0;
};

/// 128-bit IPv6 address.
class Ipv6Address {
 public:
  constexpr Ipv6Address() = default;
  explicit constexpr Ipv6Address(U128 value) : value_(value) {}

  [[nodiscard]] constexpr const U128& value() const { return value_; }

  /// One of the eight 16-bit partitions; index 0 is the highest.
  [[nodiscard]] constexpr std::uint16_t partition16(unsigned index) const {
    return static_cast<std::uint16_t>(value_.bits_from_top(16 * index, 16));
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv6Address&, const Ipv6Address&) = default;

 private:
  U128 value_{};
};

}  // namespace ofmtl
