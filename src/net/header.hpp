// PacketHeader: the parsed per-packet field vector the lookup pipeline
// classifies. Values are stored right-aligned; fields wider than 64 bits
// (IPv6) use the full 128-bit representation.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "net/addresses.hpp"
#include "net/fields.hpp"
#include "net/types.hpp"

namespace ofmtl {

class PacketHeader {
 public:
  PacketHeader() { values_.fill(U128{}); }

  void set(FieldId id, U128 value) {
    values_[index(id)] = value;
    present_ |= bit(id);
  }
  void set(FieldId id, std::uint64_t value) { set(id, U128{value}); }

  void set_in_port(std::uint32_t port) { set(FieldId::kInPort, std::uint64_t{port}); }
  void set_eth_src(MacAddress mac) { set(FieldId::kEthSrc, mac.value()); }
  void set_eth_dst(MacAddress mac) { set(FieldId::kEthDst, mac.value()); }
  void set_eth_type(std::uint16_t type) { set(FieldId::kEthType, std::uint64_t{type}); }
  void set_vlan_id(std::uint16_t vid) { set(FieldId::kVlanId, std::uint64_t{vid}); }
  void set_vlan_pcp(std::uint8_t pcp) { set(FieldId::kVlanPcp, std::uint64_t{pcp}); }
  void set_mpls_label(std::uint32_t label) {
    set(FieldId::kMplsLabel, std::uint64_t{label});
  }
  void set_ipv4_src(Ipv4Address ip) { set(FieldId::kIpv4Src, std::uint64_t{ip.value()}); }
  void set_ipv4_dst(Ipv4Address ip) { set(FieldId::kIpv4Dst, std::uint64_t{ip.value()}); }
  void set_ipv6_src(const Ipv6Address& ip) { set(FieldId::kIpv6Src, ip.value()); }
  void set_ipv6_dst(const Ipv6Address& ip) { set(FieldId::kIpv6Dst, ip.value()); }
  void set_ip_proto(std::uint8_t proto) { set(FieldId::kIpProto, std::uint64_t{proto}); }
  void set_ip_tos(std::uint8_t tos) { set(FieldId::kIpTos, std::uint64_t{tos}); }
  void set_src_port(std::uint16_t port) { set(FieldId::kSrcPort, std::uint64_t{port}); }
  void set_dst_port(std::uint16_t port) { set(FieldId::kDstPort, std::uint64_t{port}); }
  void set_metadata(std::uint64_t metadata) { set(FieldId::kMetadata, metadata); }

  [[nodiscard]] const U128& get(FieldId id) const { return values_[index(id)]; }
  [[nodiscard]] std::uint64_t get64(FieldId id) const { return values_[index(id)].lo; }
  [[nodiscard]] bool has(FieldId id) const { return (present_ & bit(id)) != 0; }
  /// Bitset of present fields (bit i = FieldId i). Fields never set() hold
  /// zero, so two headers with equal mask and equal present values compare
  /// equal — the invariant the flow-cache key hash relies on.
  [[nodiscard]] std::uint32_t present_mask() const { return present_; }

  [[nodiscard]] std::uint64_t metadata() const { return get64(FieldId::kMetadata); }

  /// The 16-bit partition of a field, index 0 = highest 16 bits (partial top
  /// partitions of non-multiple-of-16 fields are right-aligned within 16 bits).
  [[nodiscard]] std::uint16_t partition16(FieldId id, unsigned idx) const {
    const unsigned bits = field_bits(id);
    const unsigned parts = partition_count(bits);
    const unsigned low_shift = 16 * (parts - 1 - idx);
    return static_cast<std::uint16_t>((get(id) >> low_shift).lo & 0xFFFF);
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const PacketHeader&, const PacketHeader&) = default;

 private:
  [[nodiscard]] static constexpr std::size_t index(FieldId id) {
    return static_cast<std::size_t>(id);
  }
  [[nodiscard]] static constexpr std::uint32_t bit(FieldId id) {
    return std::uint32_t{1} << index(id);
  }

  std::array<U128, kFieldCount> values_{};
  std::uint32_t present_ = 0;
};

}  // namespace ofmtl
