// Prefixes and ranges — the two wildcard match syntaxes of OpenFlow fields.
#pragma once

#include <compare>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/types.hpp"

namespace ofmtl {

/// A prefix over a field of up to 128 bits: `length` significant high bits of
/// `value`; the remaining low bits are wildcarded. A zero-length prefix
/// matches everything (the routing default route 0.0.0.0/0).
class Prefix {
 public:
  constexpr Prefix() = default;

  /// Builds a prefix. `width` is the field width in bits; `length <= width`.
  /// Bits of `value` below the prefix length are cleared so that equal
  /// prefixes compare equal.
  constexpr Prefix(U128 value, unsigned length, unsigned width)
      : width_(width), length_(length) {
    if (length > width || width > 128) {
      throw std::invalid_argument("invalid prefix length/width");
    }
    // Store left-aligned at bit 127 so partition extraction is uniform.
    const U128 aligned = value << (128 - width);
    value_ = aligned & high_mask128(length);
  }

  [[nodiscard]] static constexpr Prefix from_value(std::uint64_t value,
                                                   unsigned length,
                                                   unsigned width) {
    return Prefix{U128{value}, length, width};
  }

  /// A full-width (exact) prefix.
  [[nodiscard]] static constexpr Prefix exact(std::uint64_t value, unsigned width) {
    return from_value(value, width, width);
  }

  [[nodiscard]] constexpr unsigned width() const { return width_; }
  [[nodiscard]] constexpr unsigned length() const { return length_; }
  [[nodiscard]] constexpr bool is_wildcard_all() const { return length_ == 0; }
  [[nodiscard]] constexpr bool is_exact() const { return length_ == width_; }

  /// The prefix value right-aligned into the field width (low `width` bits).
  [[nodiscard]] constexpr U128 value() const { return value_ >> (128 - width_); }

  /// The prefix value as u64 (widths <= 64 only).
  [[nodiscard]] constexpr std::uint64_t value64() const {
    if (width_ > 64) throw std::logic_error("value64 on wide prefix");
    return value().lo;
  }

  /// True if `key` (right-aligned, low `width` bits) matches this prefix.
  [[nodiscard]] constexpr bool matches(U128 key) const {
    const U128 aligned = key << (128 - width_);
    return (aligned & high_mask128(length_)) == value_;
  }
  [[nodiscard]] constexpr bool matches(std::uint64_t key) const {
    return matches(U128{key});
  }

  /// Extract `bits` bits of the (left-aligned) prefix value starting at
  /// `offset` bits from the top of the field.
  [[nodiscard]] constexpr std::uint64_t slice(unsigned offset, unsigned bits) const {
    return value_.bits_from_top(offset, bits);
  }

  /// The 16-bit partition at `index` (0 = highest 16 bits of the field).
  [[nodiscard]] constexpr std::uint16_t partition16(unsigned index) const {
    return static_cast<std::uint16_t>(slice(16 * index, 16));
  }

  /// How many bits of this prefix fall inside partition `index` of 16 bits:
  /// 16 for fully covered partitions, 0..15 for the partition the prefix ends
  /// in, 0 beyond it.
  [[nodiscard]] constexpr unsigned partition16_length(unsigned index) const {
    const unsigned start = 16 * index;
    if (length_ <= start) return 0;
    const unsigned remaining = length_ - start;
    return remaining >= 16 ? 16 : remaining;
  }

  /// True if this prefix is itself a prefix of (or equal to) `other`,
  /// i.e. the set of keys it matches is a superset.
  [[nodiscard]] constexpr bool covers(const Prefix& other) const {
    if (width_ != other.width_ || length_ > other.length_) return false;
    return (other.value_ & high_mask128(length_)) == value_;
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  U128 value_{};        // left-aligned at bit 127
  unsigned width_ = 0;  // field width in bits
  unsigned length_ = 0; // significant bits
};

/// An inclusive value range [lo, hi] over a field of up to 64 bits — the
/// match syntax of the transport-port fields (RM in Table II).
struct ValueRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  [[nodiscard]] constexpr bool contains(std::uint64_t key) const {
    return lo <= key && key <= hi;
  }
  [[nodiscard]] constexpr std::uint64_t span() const { return hi - lo; }
  /// Narrower ranges win RM ties (Section III.A: "the narrowest range is
  /// selected").
  [[nodiscard]] constexpr bool narrower_than(const ValueRange& other) const {
    return span() < other.span();
  }
  friend constexpr auto operator<=>(const ValueRange&, const ValueRange&) = default;
};

/// Expand a range into the minimal set of prefixes covering it (classic
/// range-to-prefix conversion; used by the TCAM baseline and by RM-over-trie).
[[nodiscard]] std::vector<Prefix> range_to_prefixes(const ValueRange& range,
                                                    unsigned width);

}  // namespace ofmtl
