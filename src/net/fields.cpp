#include "net/fields.hpp"

#include <stdexcept>

namespace ofmtl {

std::string_view to_string(MatchMethod method) {
  switch (method) {
    case MatchMethod::kExact: return "Exact Matching (EM)";
    case MatchMethod::kLongestPrefix: return "Wildcard matching (LPM)";
    case MatchMethod::kRange: return "Wildcard matching (RM)";
  }
  throw std::logic_error("unknown MatchMethod");
}

const std::array<FieldInfo, kFieldCount>& field_registry() {
  // Widths and methods exactly as in Table II of the paper.
  static const std::array<FieldInfo, kFieldCount> registry = {{
      {FieldId::kInPort, "Ingress Port", 32, MatchMethod::kExact},
      {FieldId::kEthSrc, "Source Ethernet", 48, MatchMethod::kLongestPrefix},
      {FieldId::kEthDst, "Destination Ethernet", 48, MatchMethod::kLongestPrefix},
      {FieldId::kEthType, "Ethernet Type", 16, MatchMethod::kExact},
      {FieldId::kVlanId, "VLAN ID", 13, MatchMethod::kExact},
      {FieldId::kVlanPcp, "VLAN Priority", 3, MatchMethod::kExact},
      {FieldId::kMplsLabel, "MPLS Label", 20, MatchMethod::kExact},
      {FieldId::kIpv4Src, "Source IPv4", 32, MatchMethod::kLongestPrefix},
      {FieldId::kIpv4Dst, "Destination IPv4", 32, MatchMethod::kLongestPrefix},
      {FieldId::kIpv6Src, "Source IPv6", 128, MatchMethod::kLongestPrefix},
      {FieldId::kIpv6Dst, "Destination IPv6", 128, MatchMethod::kLongestPrefix},
      {FieldId::kIpProto, "IPv4 Protocol", 8, MatchMethod::kExact},
      {FieldId::kIpTos, "IPv4 ToS", 6, MatchMethod::kExact},
      {FieldId::kSrcPort, "Source Port", 16, MatchMethod::kRange},
      {FieldId::kDstPort, "Destination Port", 16, MatchMethod::kRange},
      {FieldId::kMetadata, "Metadata", 64, MatchMethod::kExact},
  }};
  return registry;
}

const FieldInfo& field_info(FieldId id) {
  return field_registry().at(static_cast<std::size_t>(id));
}

std::optional<FieldId> field_from_name(std::string_view name) {
  for (const auto& info : field_registry()) {
    if (info.name == name) return info.id;
  }
  return std::nullopt;
}

}  // namespace ofmtl
