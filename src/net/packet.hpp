// Raw packet codec: builds and parses the byte-level header stacks the
// OpenFlow fields are extracted from (Ethernet, 802.1Q VLAN, MPLS, IPv4,
// IPv6, TCP/UDP). This is the "Packet Header" input of Fig. 1 — the
// Partition/Selector operates on the PacketHeader produced here.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/header.hpp"

namespace ofmtl {

/// Well-known EtherType values used by the codec.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kVlan = 0x8100,
  kIpv6 = 0x86DD,
  kMplsUnicast = 0x8847,
};

/// Adversarial-input bounds of the parser: deeper VLAN / MPLS stacks are
/// rejected rather than walked (a crafted packet could otherwise stall the
/// parser on kilobytes of nested tags).
inline constexpr unsigned kMaxVlanDepth = 4;
inline constexpr unsigned kMaxMplsDepth = 8;

/// IP protocol numbers used by the codec.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

/// Description of a packet to synthesize; optional layers are emitted only
/// when set. This is also what parsing returns (plus the flattened
/// PacketHeader).
struct PacketSpec {
  MacAddress eth_src;
  MacAddress eth_dst;
  std::optional<std::uint16_t> vlan_id;     // 12-bit VID on the wire
  std::optional<std::uint8_t> vlan_pcp;
  std::optional<std::uint32_t> mpls_label;  // 20-bit
  std::uint16_t eth_type = 0;               // innermost EtherType
  std::optional<Ipv4Address> ipv4_src;
  std::optional<Ipv4Address> ipv4_dst;
  std::optional<Ipv6Address> ipv6_src;
  std::optional<Ipv6Address> ipv6_dst;
  std::uint8_t ip_proto = 0;
  std::uint8_t ip_tos = 0;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;
  std::vector<std::uint8_t> payload;
};

/// Serialize a PacketSpec into wire bytes.
[[nodiscard]] std::vector<std::uint8_t> serialize_packet(const PacketSpec& spec);

/// Result of parsing a raw packet.
struct ParsedPacket {
  PacketSpec spec;
  PacketHeader header;  ///< flattened OpenFlow match-field view
};

/// Parse wire bytes back into a spec + flattened header. `in_port` seeds the
/// kInPort field, which is metadata of the receiving switch rather than a
/// packet byte. Throws std::invalid_argument on truncated, overrunning, or
/// otherwise malformed packets (VLAN/MPLS stacks beyond kMaxVlanDepth /
/// kMaxMplsDepth, IPv4 IHL < 5, IPv4 total length / IPv6 payload length
/// inconsistent with the buffer).
[[nodiscard]] ParsedPacket parse_packet(std::span<const std::uint8_t> bytes,
                                        std::uint32_t in_port);

/// Span-based scalar entry point for the batched trace front end: parses
/// only the match-field view — no payload copy, no allocation, no exception
/// on malformed input. Returns false when the frame is rejected (`out` is
/// then unspecified); accepted frames yield a header bitwise-identical to
/// parse_packet(bytes, in_port).header.
///
/// `wire_len` is the frame's original on-wire length when `bytes` is only
/// a captured prefix (a snap-length-capped pcap record; pcap's orig_len).
/// Length fields are then validated against the wire, not the capture —
/// "claims bytes beyond the wire frame" stays malformed, "claims bytes the
/// capture cut off" parses gracefully with the snapped-off fields absent.
/// 0 (and anything below bytes.size()) means the capture is the frame.
[[nodiscard]] bool parse_packet_header(std::span<const std::uint8_t> bytes,
                                       std::uint32_t in_port, PacketHeader& out,
                                       std::size_t wire_len = 0) noexcept;

/// Flatten a spec directly into the match-field view without a byte
/// round-trip (used by trace generators for speed).
[[nodiscard]] PacketHeader header_from_spec(const PacketSpec& spec,
                                            std::uint32_t in_port);

/// Wire canonicalization: project an arbitrary match-field header onto the
/// nearest PacketSpec the byte codec can represent. Synthetic headers range
/// over field combinations raw Ethernet cannot carry; the projection makes
/// them serializable at the cost of a lossy but deterministic rewrite:
///   - layers exist only when their anchor fields do (a VLAN tag iff
///     kVlanId; an IPv4/IPv6 header iff either address; L4 ports iff an IP
///     layer with a TCP/UDP protocol carries them), missing halves are
///     zero-filled, and IPv4 wins when both address families are present;
///   - the VLAN ID is masked to its 12 wire bits and an emitted tag always
///     carries a PCP (0 when absent);
///   - the EtherType is forced by the innermost layer (0x0800 / 0x86DD /
///     0 under MPLS, whose inner type is implicit), and a layer-announcing
///     EtherType with no matching layer (VLAN / MPLS) is cleared to 0 so
///     the parser cannot be derailed;
///   - MPLS under the codec encapsulates IPv4 only, so a label is dropped
///     from IPv6 packets; kInPort and kMetadata are switch metadata and
///     never reach the wire.
[[nodiscard]] PacketSpec spec_from_header(const PacketHeader& header);

/// The header a replay of the exported packet parses back to:
/// header_from_spec(spec_from_header(header), in_port). Idempotent in its
/// first argument, and a fixed point of serialize→parse:
/// parse_packet(serialize_packet(spec_from_header(h)), p).header ==
/// canonical_wire_header(h, p) — property-tested in tests/test_trace_replay.
[[nodiscard]] PacketHeader canonical_wire_header(const PacketHeader& header,
                                                 std::uint32_t in_port);

}  // namespace ofmtl
