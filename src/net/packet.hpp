// Raw packet codec: builds and parses the byte-level header stacks the
// OpenFlow fields are extracted from (Ethernet, 802.1Q VLAN, MPLS, IPv4,
// IPv6, TCP/UDP). This is the "Packet Header" input of Fig. 1 — the
// Partition/Selector operates on the PacketHeader produced here.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/header.hpp"

namespace ofmtl {

/// Well-known EtherType values used by the codec.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kVlan = 0x8100,
  kIpv6 = 0x86DD,
  kMplsUnicast = 0x8847,
};

/// IP protocol numbers used by the codec.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

/// Description of a packet to synthesize; optional layers are emitted only
/// when set. This is also what parsing returns (plus the flattened
/// PacketHeader).
struct PacketSpec {
  MacAddress eth_src;
  MacAddress eth_dst;
  std::optional<std::uint16_t> vlan_id;     // 12-bit VID on the wire
  std::optional<std::uint8_t> vlan_pcp;
  std::optional<std::uint32_t> mpls_label;  // 20-bit
  std::uint16_t eth_type = 0;               // innermost EtherType
  std::optional<Ipv4Address> ipv4_src;
  std::optional<Ipv4Address> ipv4_dst;
  std::optional<Ipv6Address> ipv6_src;
  std::optional<Ipv6Address> ipv6_dst;
  std::uint8_t ip_proto = 0;
  std::uint8_t ip_tos = 0;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;
  std::vector<std::uint8_t> payload;
};

/// Serialize a PacketSpec into wire bytes.
[[nodiscard]] std::vector<std::uint8_t> serialize_packet(const PacketSpec& spec);

/// Result of parsing a raw packet.
struct ParsedPacket {
  PacketSpec spec;
  PacketHeader header;  ///< flattened OpenFlow match-field view
};

/// Parse wire bytes back into a spec + flattened header. `in_port` seeds the
/// kInPort field, which is metadata of the receiving switch rather than a
/// packet byte. Throws std::invalid_argument on truncated/unknown packets.
[[nodiscard]] ParsedPacket parse_packet(std::span<const std::uint8_t> bytes,
                                        std::uint32_t in_port);

/// Flatten a spec directly into the match-field view without a byte
/// round-trip (used by trace generators for speed).
[[nodiscard]] PacketHeader header_from_spec(const PacketSpec& spec,
                                            std::uint32_t in_port);

}  // namespace ofmtl
