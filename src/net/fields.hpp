// The OpenFlow v1.3 match-field registry: the 15 common matching fields of the
// paper's Table II, with their bit widths and required matching method, plus
// the 64-bit metadata register used to pass state between lookup tables.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "net/types.hpp"

namespace ofmtl {

/// Matching method an OpenFlow field requires (Table II, column 3).
enum class MatchMethod : std::uint8_t {
  kExact,          ///< EM  — all bits compared (hash LUT in the architecture).
  kLongestPrefix,  ///< LPM — wildcard suffix (multi-bit trie).
  kRange,          ///< RM  — narrowest enclosing range (port fields).
};

[[nodiscard]] std::string_view to_string(MatchMethod method);

/// The 15 common OpenFlow v1.3 match fields analysed by the paper (Table II),
/// in the paper's order. kMetadata is the inter-table register (not counted
/// among the 15).
enum class FieldId : std::uint8_t {
  kInPort = 0,
  kEthSrc,
  kEthDst,
  kEthType,
  kVlanId,
  kVlanPcp,
  kMplsLabel,
  kIpv4Src,
  kIpv4Dst,
  kIpv6Src,
  kIpv6Dst,
  kIpProto,
  kIpTos,
  kSrcPort,
  kDstPort,
  kMetadata,
};

inline constexpr std::size_t kMatchFieldCount = 15;  // Table II rows.
inline constexpr std::size_t kFieldCount = 16;       // + metadata.

/// Static description of one match field.
struct FieldInfo {
  FieldId id;
  std::string_view name;
  unsigned bits;
  MatchMethod method;
};

/// Registry of all fields, indexed by FieldId. The widths and matching
/// methods are exactly those of Table II.
[[nodiscard]] const std::array<FieldInfo, kFieldCount>& field_registry();

[[nodiscard]] const FieldInfo& field_info(FieldId id);

[[nodiscard]] inline unsigned field_bits(FieldId id) { return field_info(id).bits; }
[[nodiscard]] inline MatchMethod field_method(FieldId id) {
  return field_info(id).method;
}
[[nodiscard]] inline std::string_view field_name(FieldId id) {
  return field_info(id).name;
}

/// Number of 16-bit partitions a wide LPM field decomposes into (paper
/// Section V.A: Ethernet = 3 tries, IPv4 = 2 tries, IPv6 = 8 tries).
[[nodiscard]] constexpr unsigned partition_count(unsigned field_bits_) {
  return (field_bits_ + 15) / 16;
}

[[nodiscard]] std::optional<FieldId> field_from_name(std::string_view name);

}  // namespace ofmtl
