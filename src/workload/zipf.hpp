// Bounded Zipf flow-index sampler for locality workloads: rank k (0-based)
// of n flows is drawn with probability proportional to (k+1)^-s, the
// canonical model of skewed switch traffic (a handful of elephant flows,
// a long tail of mice). Deterministic via the in-house Rng, so generated
// packet streams are bit-identical across platforms; s = 0 degenerates to
// the uniform distribution, bigger s concentrates more mass on the head.
//
// Implementation: inverse-CDF over a precomputed cumulative weight table —
// O(n) doubles once at construction, one uniform draw plus one binary
// search per sample. Exact for bounded n (no rejection loop), which the
// flow-cache benches prefer over approximate samplers: the hit-rate numbers
// they gate on must not drift with sampler bias.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "workload/rng.hpp"

namespace ofmtl::workload {

class ZipfSampler {
 public:
  /// Sampler over [0, n) with exponent `s` (s >= 0), seeded deterministically.
  ZipfSampler(std::size_t n, double s, std::uint64_t seed)
      : rng_(seed), cdf_(n == 0 ? 1 : n) {
    double total = 0.0;
    for (std::size_t k = 0; k < cdf_.size(); ++k) {
      total += std::pow(static_cast<double>(k + 1), -s);
      cdf_[k] = total;
    }
    for (auto& c : cdf_) c /= total;
    cdf_.back() = 1.0;  // guard against floating-point shortfall
  }

  /// Next flow rank in [0, n): rank 0 is the most popular flow.
  [[nodiscard]] std::size_t next() {
    const double u = rng_.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace ofmtl::workload
