#include "workload/acl_synth.hpp"

#include "workload/rng.hpp"

namespace ofmtl::workload {

FilterSet generate_acl(const AclConfig& config) {
  Rng rng(config.seed);

  std::vector<std::uint32_t> networks;  // /16 bases
  networks.reserve(config.network_pools);
  for (std::size_t i = 0; i < config.network_pools; ++i) {
    networks.push_back(static_cast<std::uint32_t>(rng.between(0x0A00, 0xDFFF))
                       << 16);
  }
  const std::uint16_t well_known_ports[] = {22, 25, 53, 80, 123, 443, 8080};

  const auto random_prefix = [&](bool allow_wildcard) -> Prefix {
    if (allow_wildcard && rng.chance(config.wildcard_src_share)) {
      return Prefix::from_value(0, 0, 32);
    }
    const std::uint32_t base = networks[rng.skewed_below(networks.size())];
    const double u = rng.uniform();
    unsigned length;
    if (u < 0.35) {
      length = 24;
    } else if (u < 0.6) {
      length = 32;
    } else if (u < 0.8) {
      length = static_cast<unsigned>(rng.between(25, 31));
    } else {
      length = static_cast<unsigned>(rng.between(17, 23));
    }
    const std::uint32_t host = static_cast<std::uint32_t>(rng.next());
    const std::uint32_t address = base | (host & 0xFFFF);
    return Prefix::from_value(address, length, 32);
  };

  const auto random_ports = [&]() -> ValueRange {
    const double u = rng.uniform();
    if (u < config.exact_port_share) {
      const std::uint16_t port =
          rng.chance(0.7)
              ? well_known_ports[rng.below(std::size(well_known_ports))]
              : static_cast<std::uint16_t>(rng.between(1024, 65535));
      return {port, port};
    }
    if (u < config.exact_port_share + 0.3) return {0, 65535};       // any
    if (u < config.exact_port_share + 0.45) return {1024, 65535};   // ephemeral
    if (u < config.exact_port_share + 0.6) return {0, 1023};        // privileged
    const std::uint16_t lo = static_cast<std::uint16_t>(rng.between(0, 65000));
    return {lo, static_cast<std::uint16_t>(lo + rng.between(1, 500))};
  };

  FilterSet set;
  set.name = "acl_synth_" + std::to_string(config.rules);
  set.fields = {FieldId::kIpv4Src, FieldId::kIpv4Dst, FieldId::kSrcPort,
                FieldId::kDstPort, FieldId::kIpProto};

  while (set.entries.size() < config.rules) {
    FlowEntry entry;
    entry.id = static_cast<FlowEntryId>(set.entries.size());
    entry.priority =
        static_cast<std::uint16_t>(config.rules - set.entries.size());
    entry.match.set(FieldId::kIpv4Src, FieldMatch::of_prefix(random_prefix(true)));
    entry.match.set(FieldId::kIpv4Dst, FieldMatch::of_prefix(random_prefix(false)));
    const auto sports = random_ports();
    const auto dports = random_ports();
    entry.match.set(FieldId::kSrcPort, FieldMatch::of_range(sports.lo, sports.hi));
    entry.match.set(FieldId::kDstPort, FieldMatch::of_range(dports.lo, dports.hi));
    const std::uint8_t proto = rng.chance(0.8) ? (rng.chance(0.6) ? 6 : 17)
                                               : static_cast<std::uint8_t>(1);
    entry.match.set(FieldId::kIpProto, FieldMatch::exact(std::uint64_t{proto}));
    entry.instructions = output_instruction(
        rng.chance(0.5) ? 0U : 1 + static_cast<std::uint32_t>(rng.below(16)));
    set.entries.push_back(std::move(entry));
  }
  return set;
}

}  // namespace ofmtl::workload
