#include "workload/trace_gen.hpp"

#include "workload/rng.hpp"

namespace ofmtl::workload {

namespace {

[[nodiscard]] U128 random_field_value(Rng& rng, unsigned bits) {
  if (bits > 64) return U128{rng.next(), rng.next()};
  return U128{rng.next() & low_mask(bits)};
}

}  // namespace

PacketHeader header_matching(const FlowMatch& match,
                             const std::vector<FieldId>& fields,
                             std::uint64_t seed) {
  Rng rng(seed);
  PacketHeader header;
  for (const auto id : fields) {
    const auto& fm = match.get(id);
    const unsigned bits = field_bits(id);
    switch (fm.kind) {
      case MatchKind::kAny:
        header.set(id, random_field_value(rng, bits));
        break;
      case MatchKind::kExact:
        header.set(id, fm.value);
        break;
      case MatchKind::kPrefix: {
        // Prefix bits fixed, suffix randomized.
        const unsigned free_bits = bits - fm.prefix.length();
        const U128 suffix =
            free_bits == 0 ? U128{}
                           : (random_field_value(rng, bits) &
                              ((~U128{}) >> (128 - free_bits)));
        header.set(id, fm.prefix.value() | suffix);
        break;
      }
      case MatchKind::kRange:
        header.set(id, fm.range.lo + rng.below(fm.range.span() + 1));
        break;
      case MatchKind::kMasked: {
        const U128 noise = random_field_value(rng, bits);
        header.set(id, fm.value | (noise & ~fm.mask));
        break;
      }
    }
  }
  return header;
}

PacketHeader random_header(const std::vector<FieldId>& fields,
                           std::uint64_t seed) {
  Rng rng(seed);
  PacketHeader header;
  for (const auto id : fields) {
    header.set(id, random_field_value(rng, field_bits(id)));
  }
  return header;
}

std::vector<PacketHeader> generate_trace(const FilterSet& set,
                                         const TraceConfig& config) {
  Rng rng(config.seed);
  std::vector<PacketHeader> trace;
  trace.reserve(config.packets);
  for (std::size_t i = 0; i < config.packets; ++i) {
    if (!set.entries.empty() && rng.chance(config.hit_ratio)) {
      const auto& entry = set.entries[rng.below(set.entries.size())];
      trace.push_back(header_matching(entry.match, set.fields, rng.next()));
    } else {
      trace.push_back(random_header(set.fields, rng.next()));
    }
  }
  return trace;
}

}  // namespace ofmtl::workload
