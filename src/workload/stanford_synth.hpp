// Synthetic Stanford-backbone filter sets, calibrated to Tables III and IV.
//
// For each of the 16 router filters the generator reproduces *exactly* the
// statistics the paper's memory analysis depends on: the rule count and the
// number of unique values per field / 16-bit partition. Value structure is
// realistic (OUI locality for MAC addresses, CIDR structure and wildcard
// share for routes) but synthetic; DESIGN.md §4 records the substitution.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "flow/flow_entry.hpp"
#include "workload/calibration.hpp"

namespace ofmtl::workload {

/// The two applications of the paper's evaluation (Section III.C).
enum class FilterApp : std::uint8_t { kMacLearning, kRouting };

[[nodiscard]] std::string_view to_string(FilterApp app);

/// Generate the MAC-learning filter set for one calibration row.
/// Fields: VLAN ID (exact) + destination Ethernet (exact 48-bit).
[[nodiscard]] FilterSet generate_mac_filterset(const MacFilterTarget& target,
                                               std::uint64_t seed = 0);

/// Generate the routing filter set for one calibration row.
/// Fields: ingress port (exact) + destination IPv4 (prefix). Includes the
/// 0.0.0.0/0 default route the paper calls out; priorities follow prefix
/// length (LPM semantics).
[[nodiscard]] FilterSet generate_routing_filterset(
    const RoutingFilterTarget& target, std::uint64_t seed = 0);

/// Generate by router name ("bbra" ... "yozb").
[[nodiscard]] FilterSet generate_filterset(FilterApp app, std::string_view name,
                                           std::uint64_t seed = 0);

/// All 16 filter sets of one application.
[[nodiscard]] std::vector<FilterSet> generate_all(FilterApp app,
                                                  std::uint64_t seed = 0);

}  // namespace ofmtl::workload
