// Deterministic RNG for workload generation. Own implementation (splitmix64 /
// xoshiro256**) so generated filter sets are bit-identical across standard
// libraries and platforms — results in EXPERIMENTS.md stay reproducible.
#pragma once

#include <cstdint>

namespace ofmtl::workload {

[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).
  constexpr std::uint64_t below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }
  /// Uniform in [lo, hi].
  constexpr std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }
  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  /// Skewed index in [0, n): quadratic bias toward low indices, giving the
  /// heavy value-repetition real filter sets show.
  constexpr std::uint64_t skewed_below(std::uint64_t n) {
    const double u = uniform();
    return static_cast<std::uint64_t>(u * u * static_cast<double>(n));
  }
  constexpr bool chance(double p) { return uniform() < p; }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace ofmtl::workload
