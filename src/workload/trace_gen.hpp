// Packet-trace generation: header streams that exercise a filter set with a
// controllable hit ratio, used by the lookup-throughput benches and the
// pipeline equivalence tests.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/flow_entry.hpp"
#include "net/header.hpp"

namespace ofmtl::workload {

struct TraceConfig {
  std::size_t packets = 1000;
  double hit_ratio = 0.9;    ///< share of packets built from some rule
  std::uint64_t seed = 1;
};

/// Build headers from a filter set: hit packets instantiate a random rule
/// (wildcard bits randomized), miss packets are uniformly random over the
/// constrained fields.
[[nodiscard]] std::vector<PacketHeader> generate_trace(const FilterSet& set,
                                                       const TraceConfig& config);

/// A header satisfying `match` with wildcarded bits drawn from `seed`.
[[nodiscard]] PacketHeader header_matching(const FlowMatch& match,
                                           const std::vector<FieldId>& fields,
                                           std::uint64_t seed);

/// A uniformly random header over `fields`.
[[nodiscard]] PacketHeader random_header(const std::vector<FieldId>& fields,
                                         std::uint64_t seed);

}  // namespace ofmtl::workload
