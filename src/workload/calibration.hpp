// Calibration targets for the synthetic Stanford-backbone filter sets: the
// exact per-filter rule counts and unique-field-value counts the paper
// publishes in Table III (MAC learning) and Table IV (routing). The real
// filter sets ([21], github.com/wuyangjack/stanford-backbone) are not
// available offline; these published statistics are what the memory model
// actually depends on, so generators reproduce them exactly (DESIGN.md §4).
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace ofmtl::workload {

/// Table III row: unique field values of one flow-based MAC filter.
struct MacFilterTarget {
  std::string_view name;
  std::size_t rules;
  std::size_t unique_vlan;
  std::size_t unique_eth_hi;   // higher 16-bit Ethernet partition
  std::size_t unique_eth_mid;  // middle 16-bit
  std::size_t unique_eth_lo;   // lower 16-bit
};

/// Table IV row: unique field values of one flow-based routing filter.
struct RoutingFilterTarget {
  std::string_view name;
  std::size_t rules;
  std::size_t unique_ports;
  std::size_t unique_ip_hi;  // higher 16-bit IPv4 partition
  std::size_t unique_ip_lo;  // lower 16-bit
};

inline constexpr std::size_t kFilterCount = 16;

/// Table III, verbatim.
inline constexpr std::array<MacFilterTarget, kFilterCount> kMacTargets = {{
    {"bbra", 507, 48, 46, 133, 261},
    {"bbrb", 151, 16, 26, 38, 55},
    {"boza", 3664, 139, 136, 3276, 2664},
    {"bozb", 4454, 139, 137, 1338, 3440},
    {"coza", 3295, 32, 225, 1578, 2824},
    {"cozb", 2129, 32, 194, 1101, 1861},
    {"goza", 6687, 208, 172, 2579, 5480},
    {"gozb", 7370, 209, 159, 1946, 6177},
    {"poza", 4533, 153, 195, 2165, 3786},
    {"pozb", 4999, 155, 169, 1759, 4170},
    {"roza", 3851, 114, 136, 2389, 3264},
    {"rozb", 3711, 113, 140, 1920, 3175},
    {"soza", 3153, 41, 187, 1115, 2682},
    {"sozb", 2399, 39, 161, 821, 2132},
    {"yoza", 3944, 112, 178, 1655, 3180},
    {"yozb", 2944, 101, 162, 1298, 2351},
}};

/// Table IV, verbatim. coza/cozb/soza/sozb are the paper's highlighted
/// anomaly: more unique values in the *higher* partition than the lower.
inline constexpr std::array<RoutingFilterTarget, kFilterCount> kRoutingTargets = {{
    {"bbra", 1835, 40, 82, 1190},
    {"bbrb", 1678, 20, 82, 1015},
    {"boza", 1614, 26, 53, 1084},
    {"bozb", 1455, 26, 53, 952},
    {"coza", 184909, 43, 20214, 7062},
    {"cozb", 183376, 39, 20212, 5575},
    {"goza", 1767, 21, 57, 1216},
    {"gozb", 1669, 22, 57, 1138},
    {"poza", 1489, 18, 54, 976},
    {"pozb", 1434, 20, 54, 932},
    {"roza", 1567, 17, 52, 1053},
    {"rozb", 1483, 16, 52, 988},
    {"soza", 184682, 48, 20212, 6723},
    {"sozb", 180944, 36, 20212, 3168},
    {"yoza", 4746, 77, 58, 3610},
    {"yozb", 2592, 48, 55, 1955},
}};

[[nodiscard]] const MacFilterTarget& mac_target(std::string_view name);
[[nodiscard]] const RoutingFilterTarget& routing_target(std::string_view name);

}  // namespace ofmtl::workload
