// Synthetic→pcap export: serialize the header streams the workload
// generators produce (filter-set traces, Zipf streams) into classic pcap
// captures, so every synthetic scenario round-trips through the byte-level
// trace-ingest path (trace/pcap.hpp → trace/wire_parse.hpp → replay).
//
// Synthetic headers range over field combinations raw Ethernet cannot
// carry (free-standing L4 ports, 13-bit VLAN IDs, kInPort...), so export
// wire-canonicalizes each header first (spec_from_header in net/packet.hpp
// documents the projection). replayed_headers() computes what a replay of
// the capture parses back to — the oracle side of the round-trip tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flow/flow_entry.hpp"
#include "net/header.hpp"
#include "trace/pcap.hpp"

namespace ofmtl::workload {

/// The ingress port a single-port capture of this filter set's traffic
/// would arrive on: the first exact kInPort match in the set, or 0 when the
/// set does not match on the ingress port. Replay parses a whole capture
/// under one in_port (the wire does not carry it), so picking a port the
/// rules actually match keeps e.g. routing traces walking the full
/// two-table pipeline instead of missing at table 0. Shared by the CLI,
/// bench_replay, and the replay tests so they cannot drift apart.
[[nodiscard]] std::uint32_t capture_in_port(const FilterSet& set);

struct TraceExportConfig {
  std::uint64_t base_ts_ns = 1'000'000'000ULL;  ///< first record timestamp
  std::uint64_t inter_packet_gap_ns = 1'000;    ///< synthetic spacing
  trace::PcapWriterConfig pcap;                 ///< endianness / precision
};

/// Serialize `headers` (wire-canonicalized) into an in-memory pcap capture;
/// the returned writer exposes the buffer and save(path).
[[nodiscard]] trace::PcapWriter export_trace(
    std::span<const PacketHeader> headers, const TraceExportConfig& config = {});

/// The headers a replay of the exported capture parses back to:
/// canonical_wire_header(headers[i], in_port) lane by lane.
[[nodiscard]] std::vector<PacketHeader> replayed_headers(
    std::span<const PacketHeader> headers, std::uint32_t in_port);

}  // namespace ofmtl::workload
