#include "workload/calibration.hpp"

#include <stdexcept>
#include <string>

namespace ofmtl::workload {

const MacFilterTarget& mac_target(std::string_view name) {
  for (const auto& target : kMacTargets) {
    if (target.name == name) return target;
  }
  throw std::invalid_argument("unknown MAC filter: " + std::string(name));
}

const RoutingFilterTarget& routing_target(std::string_view name) {
  for (const auto& target : kRoutingTargets) {
    if (target.name == name) return target;
  }
  throw std::invalid_argument("unknown routing filter: " + std::string(name));
}

}  // namespace ofmtl::workload
