// ClassBench-style 5-tuple ACL generator for the Table I algorithm
// comparison and the multi-dimensional baselines. Produces rules over
// (src IPv4 prefix, dst IPv4 prefix, src port range, dst port range,
// protocol) with the characteristic structure of access-control lists.
#pragma once

#include <cstdint>

#include "flow/flow_entry.hpp"

namespace ofmtl::workload {

struct AclConfig {
  std::size_t rules = 1000;
  std::uint64_t seed = 7;
  double wildcard_src_share = 0.2;   ///< rules with src = */0
  double exact_port_share = 0.4;     ///< ranges collapsed to one port
  std::size_t network_pools = 64;    ///< distinct /16 networks drawn from
};

/// Fields: kIpv4Src, kIpv4Dst, kSrcPort, kDstPort, kIpProto.
[[nodiscard]] FilterSet generate_acl(const AclConfig& config);

}  // namespace ofmtl::workload
