#include "workload/trace_export.hpp"

#include "net/packet.hpp"

namespace ofmtl::workload {

std::uint32_t capture_in_port(const FilterSet& set) {
  for (const auto& entry : set.entries) {
    const auto& match = entry.match.get(FieldId::kInPort);
    if (match.kind == MatchKind::kExact) {
      return static_cast<std::uint32_t>(match.value.lo);
    }
  }
  return 0;
}

trace::PcapWriter export_trace(std::span<const PacketHeader> headers,
                               const TraceExportConfig& config) {
  trace::PcapWriter writer(config.pcap);
  std::uint64_t ts = config.base_ts_ns;
  for (const auto& header : headers) {
    writer.append(ts, serialize_packet(spec_from_header(header)));
    ts += config.inter_packet_gap_ns;
  }
  return writer;
}

std::vector<PacketHeader> replayed_headers(
    std::span<const PacketHeader> headers, std::uint32_t in_port) {
  std::vector<PacketHeader> canonical;
  canonical.reserve(headers.size());
  for (const auto& header : headers) {
    canonical.push_back(canonical_wire_header(header, in_port));
  }
  return canonical;
}

}  // namespace ofmtl::workload
