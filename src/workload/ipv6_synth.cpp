#include "workload/ipv6_synth.hpp"

#include <unordered_set>

#include "workload/rng.hpp"

namespace ofmtl::workload {

FilterSet generate_ipv6_routing(const Ipv6RoutingConfig& config) {
  Rng rng(config.seed * 0x9E3779B97F4A7C15ULL ^ config.routes);

  // Global-unicast /32 allocations (2000::/3 space) the routes cluster in.
  std::vector<std::uint32_t> allocations;  // top 32 bits
  allocations.reserve(config.network_pools);
  for (std::size_t i = 0; i < config.network_pools; ++i) {
    allocations.push_back(0x20010000U | static_cast<std::uint32_t>(rng.below(0xFFFF)));
  }

  FilterSet set;
  set.name = "ipv6_routing_" + std::to_string(config.routes);
  set.fields = {FieldId::kInPort, FieldId::kIpv6Dst};
  set.entries.reserve(config.routes);

  const auto add_route = [&](const Prefix& prefix) {
    FlowEntry entry;
    entry.id = static_cast<FlowEntryId>(set.entries.size());
    entry.priority = static_cast<std::uint16_t>(prefix.length());
    entry.match.set(FieldId::kInPort,
                    FieldMatch::exact(1 + rng.below(config.unique_ports)));
    entry.match.set(FieldId::kIpv6Dst, FieldMatch::of_prefix(prefix));
    entry.instructions = output_instruction(
        1 + static_cast<std::uint32_t>(rng.below(64)));
    set.entries.push_back(std::move(entry));
  };

  add_route(Prefix{U128{}, 0, 128});  // ::/0 default route

  std::unordered_set<std::uint64_t> seen;  // hash of (len, value)
  while (set.entries.size() < config.routes) {
    unsigned length;
    const double u = rng.uniform();
    if (u < 0.20) {
      length = 32;
    } else if (u < 0.50) {
      length = 48;
    } else if (u < 0.85) {
      length = 64;
    } else if (u < 0.95) {
      length = 33 + static_cast<unsigned>(rng.below(31));
    } else {
      length = 128;  // host route
    }
    const std::uint32_t alloc = allocations[rng.skewed_below(allocations.size())];
    const U128 address{(std::uint64_t{alloc} << 32) | (rng.next() & 0xFFFFFFFF),
                       rng.next()};
    const Prefix prefix{address, length, 128};
    const std::uint64_t key =
        (std::uint64_t{length} << 56) ^ prefix.value().hi ^
        (prefix.value().lo * 0x9E3779B97F4A7C15ULL);
    if (!seen.insert(key).second) continue;
    add_route(prefix);
  }
  return set;
}

}  // namespace ofmtl::workload
