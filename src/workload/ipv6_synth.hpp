// IPv6 routing filter-set generator — extension beyond the paper's IPv4
// evaluation. OpenFlow v1.3 lists the 128-bit IPv6 pair among its LPM match
// fields (Table II), so the architecture must scale to eight 16-bit
// partition tries per address; this workload exercises that path.
#pragma once

#include <cstdint>

#include "flow/flow_entry.hpp"

namespace ofmtl::workload {

struct Ipv6RoutingConfig {
  std::size_t routes = 1000;
  std::size_t unique_ports = 32;
  std::uint64_t seed = 3;
  std::size_t network_pools = 48;  ///< distinct /32 allocations drawn from
};

/// Fields: kInPort (exact) + kIpv6Dst (prefix). Realistic length mix
/// (/32 allocations, /48 sites, /64 subnets, /128 hosts, ::/0 default);
/// priorities follow prefix length (LPM semantics).
[[nodiscard]] FilterSet generate_ipv6_routing(const Ipv6RoutingConfig& config);

}  // namespace ofmtl::workload
