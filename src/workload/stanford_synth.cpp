#include "workload/stanford_synth.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "net/addresses.hpp"
#include "workload/rng.hpp"

namespace ofmtl::workload {

namespace {

/// `count` distinct values in [lo, hi], drawn with cluster locality: values
/// concentrate around a handful of anchors, as real assignments (OUIs,
/// subnet blocks) do.
[[nodiscard]] std::vector<std::uint64_t> distinct_values(Rng& rng,
                                                         std::size_t count,
                                                         std::uint64_t lo,
                                                         std::uint64_t hi) {
  if (hi - lo + 1 < count) throw std::invalid_argument("pool range too small");
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::uint64_t> values;
  values.reserve(count);
  const std::size_t anchor_count = std::max<std::size_t>(1, count / 24);
  std::vector<std::uint64_t> anchors;
  for (std::size_t i = 0; i < anchor_count; ++i) {
    anchors.push_back(rng.between(lo, hi));
  }
  while (values.size() < count) {
    std::uint64_t value;
    if (rng.chance(0.7)) {
      // Cluster member: anchor plus a small offset.
      const std::uint64_t anchor = anchors[rng.below(anchors.size())];
      const std::uint64_t offset = rng.below(256);
      value = anchor + offset <= hi ? anchor + offset : anchor - offset % (anchor - lo + 1);
    } else {
      value = rng.between(lo, hi);
    }
    if (seen.insert(value).second) values.push_back(value);
  }
  return values;
}

[[nodiscard]] InstructionSet forward_to(std::uint32_t port) {
  return output_instruction(port);
}

}  // namespace

std::string_view to_string(FilterApp app) {
  switch (app) {
    case FilterApp::kMacLearning: return "mac";
    case FilterApp::kRouting: return "routing";
  }
  throw std::logic_error("unknown FilterApp");
}

FilterSet generate_mac_filterset(const MacFilterTarget& target,
                                 std::uint64_t seed) {
  Rng rng(seed * 0x100001B3ULL ^ target.rules * 0x9E37ULL ^ target.unique_eth_lo);
  const std::size_t max_pool = std::max(
      {target.unique_eth_hi, target.unique_eth_mid, target.unique_eth_lo});
  if (target.rules < max_pool || target.rules < target.unique_vlan) {
    throw std::invalid_argument("calibration target infeasible");
  }

  const auto vlan_pool = distinct_values(rng, target.unique_vlan, 1, 4094);
  const auto hi_pool = distinct_values(rng, target.unique_eth_hi, 0, 0xFFFF);
  const auto mid_pool = distinct_values(rng, target.unique_eth_mid, 0, 0xFFFF);
  const auto lo_pool = distinct_values(rng, target.unique_eth_lo, 0, 0xFFFF);

  std::unordered_set<std::uint64_t> macs_seen;
  FilterSet set;
  set.name = std::string(target.name) + "_mac";
  set.fields = {FieldId::kVlanId, FieldId::kEthDst};
  set.entries.reserve(target.rules);

  const auto add_rule = [&](std::uint64_t mac_value, std::uint64_t vlan) {
    FlowEntry entry;
    entry.id = static_cast<FlowEntryId>(set.entries.size());
    entry.priority = 1;  // exact disjoint rules: flat priority
    entry.match.set(FieldId::kVlanId, FieldMatch::exact(vlan));
    entry.match.set(FieldId::kEthDst, FieldMatch::exact(mac_value));
    entry.instructions = forward_to(1 + static_cast<std::uint32_t>(rng.below(48)));
    set.entries.push_back(std::move(entry));
  };

  // Phase 1 — pool coverage: component i % pool_size; the largest pool's
  // component is distinct for i < max_pool, so the MAC triples are distinct.
  for (std::size_t i = 0; i < max_pool; ++i) {
    const std::uint64_t mac = (hi_pool[i % hi_pool.size()] << 32) |
                              (mid_pool[i % mid_pool.size()] << 16) |
                              lo_pool[i % lo_pool.size()];
    macs_seen.insert(mac);
    add_rule(mac, vlan_pool[i % vlan_pool.size()]);
  }
  // Phase 2 — fill to the rule count with skewed reuse of pool values.
  while (set.entries.size() < target.rules) {
    const std::uint64_t mac = (hi_pool[rng.skewed_below(hi_pool.size())] << 32) |
                              (mid_pool[rng.skewed_below(mid_pool.size())] << 16) |
                              lo_pool[rng.skewed_below(lo_pool.size())];
    if (!macs_seen.insert(mac).second) continue;
    add_rule(mac, vlan_pool[set.entries.size() % vlan_pool.size()]);
  }
  return set;
}

FilterSet generate_routing_filterset(const RoutingFilterTarget& target,
                                     std::uint64_t seed) {
  Rng rng(seed * 0x100001B3ULL ^ target.rules * 0x9E37ULL ^ target.unique_ip_hi);

  // High-partition pool: (value, length) partition prefixes. A small share
  // are short prefixes (len < 16) modelling /8../15 routes; the rest pin all
  // 16 network bits. The default route /0 is added separately and does not
  // count as a unique partition value.
  struct PartItem {
    std::uint16_t value;
    std::uint8_t length;
  };
  const std::size_t short_hi =
      std::min<std::size_t>(target.unique_ip_hi / 12 + 1, 48);
  std::vector<PartItem> hi_pool;
  hi_pool.reserve(target.unique_ip_hi);
  {
    std::unordered_set<std::uint32_t> seen;  // (len << 16) | value
    // Short prefixes first.
    while (hi_pool.size() < short_hi) {
      const auto length = static_cast<std::uint8_t>(rng.between(8, 15));
      const auto value = static_cast<std::uint16_t>(
          (rng.below(1ULL << length)) << (16 - length));
      if (seen.insert((std::uint32_t{length} << 16) | value).second) {
        hi_pool.push_back({value, length});
      }
    }
    const auto values =
        distinct_values(rng, target.unique_ip_hi - short_hi, 0x0100, 0xDFFF);
    for (const auto v : values) {
      hi_pool.push_back({static_cast<std::uint16_t>(v), 16});
    }
  }

  // Low-partition pool: CIDR-shaped lengths (peak at 8, i.e. /24 routes).
  // Anomaly filters (unique_ip_hi > unique_ip_lo: coza/cozb/soza/sozb) are
  // backbone tables dominated by long, specific routes — their low items
  // skew to longer partition lengths, which is what makes the *higher* trie
  // the memory bottleneck in the paper's Fig. 4(b).
  const bool wide_network_profile = target.unique_ip_hi > target.unique_ip_lo;
  std::vector<PartItem> lo_pool;
  lo_pool.reserve(target.unique_ip_lo);
  {
    std::unordered_set<std::uint32_t> seen;
    while (lo_pool.size() < target.unique_ip_lo) {
      std::uint8_t length;
      const double u = rng.uniform();
      if (wide_network_profile) {
        length = u < 0.7 ? 16 : static_cast<std::uint8_t>(rng.between(10, 16));
      } else if (u < 0.45) {
        length = 8;  // /24
      } else if (u < 0.65) {
        length = 16;  // /32 host routes
      } else {
        length = static_cast<std::uint8_t>(rng.between(1, 16));
      }
      const auto value = static_cast<std::uint16_t>((rng.below(1ULL << length))
                                                    << (16 - length));
      if (seen.insert((std::uint32_t{length} << 16) | value).second) {
        lo_pool.push_back({value, length});
      }
    }
  }

  const auto port_pool = distinct_values(rng, target.unique_ports, 1, 256);

  FilterSet set;
  set.name = std::string(target.name) + "_routing";
  set.fields = {FieldId::kInPort, FieldId::kIpv4Dst};
  set.entries.reserve(target.rules);

  const auto add_rule = [&](const Prefix& prefix, std::uint64_t port) {
    FlowEntry entry;
    entry.id = static_cast<FlowEntryId>(set.entries.size());
    entry.priority = static_cast<std::uint16_t>(prefix.length());
    entry.match.set(FieldId::kInPort, FieldMatch::exact(port));
    entry.match.set(FieldId::kIpv4Dst, FieldMatch::of_prefix(prefix));
    entry.instructions = forward_to(1 + static_cast<std::uint32_t>(rng.below(48)));
    set.entries.push_back(std::move(entry));
  };

  // Default route (the paper: routing filters "require larger prefix
  // lookups (e.g. 0.0.0.0/0)").
  add_rule(Prefix::from_value(0, 0, 32), port_pool[0]);

  // Phase 0 — short high prefixes: one rule each, low partition wildcard.
  std::size_t port_cursor = 0;
  std::vector<PartItem> full_hi;
  for (const auto& item : hi_pool) {
    if (item.length < 16) {
      add_rule(Prefix::from_value(std::uint64_t{item.value} << 16, item.length, 32),
               port_pool[port_cursor++ % port_pool.size()]);
    } else {
      full_hi.push_back(item);
    }
  }

  // Phase 1 — pool coverage over (full-high, low) pairs.
  const std::size_t coverage = std::max(full_hi.size(), lo_pool.size());
  std::unordered_set<std::uint64_t> pairs_seen;  // (hi_idx << 32) | lo_idx
  for (std::size_t i = 0; i < coverage && set.entries.size() < target.rules; ++i) {
    const std::size_t hi_idx = i % full_hi.size();
    const std::size_t lo_idx = i % lo_pool.size();
    pairs_seen.insert((std::uint64_t{hi_idx} << 32) | lo_idx);
    const auto& hi = full_hi[hi_idx];
    const auto& lo = lo_pool[lo_idx];
    const std::uint32_t address =
        (std::uint32_t{hi.value} << 16) | lo.value;
    add_rule(Prefix::from_value(address, 16U + lo.length, 32),
             port_pool[port_cursor++ % port_pool.size()]);
  }

  // Phase 2 — fill with skewed reuse.
  while (set.entries.size() < target.rules) {
    const std::size_t hi_idx = rng.skewed_below(full_hi.size());
    const std::size_t lo_idx = rng.skewed_below(lo_pool.size());
    if (!pairs_seen.insert((std::uint64_t{hi_idx} << 32) | lo_idx).second) {
      continue;
    }
    const auto& hi = full_hi[hi_idx];
    const auto& lo = lo_pool[lo_idx];
    const std::uint32_t address = (std::uint32_t{hi.value} << 16) | lo.value;
    add_rule(Prefix::from_value(address, 16U + lo.length, 32),
             port_pool[port_cursor++ % port_pool.size()]);
  }
  return set;
}

FilterSet generate_filterset(FilterApp app, std::string_view name,
                             std::uint64_t seed) {
  switch (app) {
    case FilterApp::kMacLearning:
      return generate_mac_filterset(mac_target(name), seed);
    case FilterApp::kRouting:
      return generate_routing_filterset(routing_target(name), seed);
  }
  throw std::logic_error("unknown FilterApp");
}

std::vector<FilterSet> generate_all(FilterApp app, std::uint64_t seed) {
  std::vector<FilterSet> sets;
  sets.reserve(kFilterCount);
  for (std::size_t i = 0; i < kFilterCount; ++i) {
    const auto name = app == FilterApp::kMacLearning ? kMacTargets[i].name
                                                     : kRoutingTargets[i].name;
    sets.push_back(generate_filterset(app, name, seed));
  }
  return sets;
}

}  // namespace ofmtl::workload
