// Unibit (binary) trie for longest-prefix matching — the textbook LPM
// structure. Serves as the correctness oracle for the multi-bit trie and as
// the 1-bit-stride end of the stride ablation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/prefix.hpp"

namespace ofmtl {

class UnibitTrie {
 public:
  /// `width` is the key width in bits (<= 64).
  explicit UnibitTrie(unsigned width);

  /// Insert (or overwrite) a prefix with an associated value.
  void insert(const Prefix& prefix, std::uint32_t value);

  /// Remove a prefix; returns whether it was present.
  bool remove(const Prefix& prefix);

  /// Longest-prefix match; nullopt when nothing (not even /0) matches.
  [[nodiscard]] std::optional<std::uint32_t> lookup(std::uint64_t key) const;

  /// Values of every prefix matching `key`, shortest first.
  [[nodiscard]] std::vector<std::uint32_t> lookup_all(std::uint64_t key) const;

  [[nodiscard]] unsigned width() const { return width_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t prefix_count() const { return prefix_count_; }

 private:
  struct Node {
    std::int32_t child[2] = {-1, -1};
    std::optional<std::uint32_t> value;
  };

  std::vector<Node> nodes_;
  unsigned width_;
  std::size_t prefix_count_ = 0;
};

}  // namespace ofmtl
