// Tree Bitmap (Eatherton/Srinivasan/Dittia) — the compressed multi-bit-trie
// node layout: one node per stride carries an *internal* bitmap marking the
// prefixes ending inside the node, an *external* bitmap marking which child
// subtrees exist, and two base pointers; children and results are stored
// contiguously and addressed by popcount. The hardware-honest answer to
// "what does the sparse storage policy cost per node" — used by the node-
// layout ablation against the paper's array-block MBT.
//
// Build-once structure: constructed from a complete prefix set (updates
// rebuild), as the contiguous child arrays are not incrementally mutable.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/label.hpp"
#include "mem/memory_model.hpp"
#include "net/prefix.hpp"

namespace ofmtl {

class TreeBitmapTrie {
 public:
  /// Build from a prefix/label set. `strides` must sum to `width`; each
  /// stride <= 6 (bitmaps of at most 2^6 = 64 bits). Duplicate prefixes:
  /// last label wins.
  TreeBitmapTrie(unsigned width, std::vector<unsigned> strides,
                 std::vector<std::pair<Prefix, Label>> prefixes);

  /// Longest-prefix match.
  [[nodiscard]] std::optional<Label> lookup(std::uint64_t key) const;

  /// Batched longest-prefix match: descents interleaved across keys in
  /// lock-step, with software prefetch of each key's next node and
  /// child-table line before any lane dereferences it. out[i] = lookup
  /// result for keys[i].
  void lookup_batch(std::span<const std::uint64_t> keys,
                    std::span<std::optional<Label>> out) const;

  [[nodiscard]] unsigned width() const { return width_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t node_count(std::size_t level) const;
  [[nodiscard]] std::size_t result_count() const { return results_.size(); }

  /// Bits of one node at `level`: internal bitmap (2^s - 1) + external
  /// bitmap (2^s, absent at the last level) + child and result pointers.
  [[nodiscard]] unsigned node_bits(std::size_t level, unsigned label_bits) const;
  [[nodiscard]] std::uint64_t total_bits(unsigned label_bits) const;
  [[nodiscard]] mem::MemoryReport memory_report(const std::string& name,
                                                unsigned label_bits) const;

 private:
  struct Node {
    U128 internal{};             // bit (2^l - 1 + value) set: prefix ends here
                                 // (128-bit: last-level stride 6 needs 127)
    std::uint64_t external = 0;  // bit c set: child for chunk value c
    std::uint32_t child_base = 0;
    std::uint32_t result_base = 0;
    std::uint8_t level = 0;
  };

  /// Recursive construction; returns the index of the built node.
  std::uint32_t build(std::size_t level, std::uint64_t path,
                      const std::vector<std::pair<Prefix, Label>>& prefixes);

  unsigned width_;
  std::vector<unsigned> strides_;
  std::vector<unsigned> cum_before_;
  std::vector<Node> nodes_;
  std::vector<Label> results_;
  // Child indirection: child_base points into this dense table, which holds
  // node indices. (Hardware lays children out contiguously instead; the
  // table models the same popcount addressing without relocation logic.)
  std::vector<std::uint32_t> child_table_;
  // Longest-internal-match masks, one per (level, chunk): the OR of the
  // internal-bitmap positions every ancestor chunk of `chunk` occupies
  // (lengths 0..max_len). `internal & mask` collapses the per-length probe
  // loop into one AND; heap positions strictly increase with length, so the
  // longest match is simply the highest set bit of the intersection.
  std::vector<U128> match_masks_;
  std::vector<std::size_t> mask_base_;  // per level, into match_masks_
};

}  // namespace ofmtl
