#include "classifier/tcam.hpp"

#include <algorithm>
#include <stdexcept>

namespace ofmtl {

TcamModel::TcamModel(std::vector<FieldId> fields) : fields_(std::move(fields)) {
  for (const auto id : fields_) word_bits_ += field_bits(id);
  if (word_bits_ == 0 || word_bits_ > 128) {
    throw std::invalid_argument("TCAM word must be 1..128 bits");
  }
}

U128 TcamModel::concatenate_key(const PacketHeader& header) const {
  U128 key{};
  for (const auto id : fields_) {
    const unsigned bits = field_bits(id);
    key = (key << bits) | (header.get(id) & ((~U128{}) >> (128 - bits)));
  }
  return key;
}

std::size_t TcamModel::add_rule(const FlowMatch& match, std::uint16_t priority,
                                std::uint32_t rule_index) {
  // Per-field (value, mask) alternatives; ranges expand into several.
  struct Alternative {
    U128 value{};
    U128 mask{};
  };
  std::vector<TernaryEntry> expanded;
  expanded.push_back(TernaryEntry{U128{}, U128{}, rule_index, priority});

  for (const auto id : fields_) {
    const unsigned bits = field_bits(id);
    const auto& fm = match.get(id);
    std::vector<Alternative> alternatives;
    const U128 full = (~U128{}) >> (128 - bits);
    switch (fm.kind) {
      case MatchKind::kAny:
        alternatives.push_back({U128{}, U128{}});
        break;
      case MatchKind::kExact:
        alternatives.push_back({fm.value & full, full});
        break;
      case MatchKind::kMasked:
        alternatives.push_back({fm.value & full, fm.mask & full});
        break;
      case MatchKind::kPrefix: {
        const unsigned len = fm.prefix.length();
        const U128 mask = len == 0 ? U128{} : (full << (bits - len)) & full;
        alternatives.push_back({fm.prefix.value() & mask, mask});
        break;
      }
      case MatchKind::kRange: {
        for (const auto& prefix : range_to_prefixes(fm.range, bits)) {
          const unsigned len = prefix.length();
          const U128 mask = len == 0 ? U128{} : (full << (bits - len)) & full;
          alternatives.push_back({prefix.value() & mask, mask});
        }
        break;
      }
    }
    std::vector<TernaryEntry> next;
    next.reserve(expanded.size() * alternatives.size());
    for (const auto& entry : expanded) {
      for (const auto& alt : alternatives) {
        TernaryEntry combined = entry;
        combined.value = (combined.value << bits) | alt.value;
        combined.mask = (combined.mask << bits) | alt.mask;
        next.push_back(combined);
      }
    }
    expanded = std::move(next);
  }

  for (auto& entry : expanded) {
    const auto pos = std::find_if(
        entries_.begin(), entries_.end(),
        [&entry](const TernaryEntry& e) { return e.priority < entry.priority; });
    entries_.insert(pos, entry);
  }
  return expanded.size();
}

std::optional<std::uint32_t> TcamModel::lookup(const PacketHeader& header) const {
  const U128 key = concatenate_key(header);
  for (const auto& entry : entries_) {
    if (entry.matches(key)) return entry.rule;
  }
  return std::nullopt;
}

mem::MemoryReport TcamModel::memory_report() const {
  mem::MemoryReport report;
  report.add("tcam.cells", entries_.size(), 2 * word_bits_);
  return report;
}

}  // namespace ofmtl
