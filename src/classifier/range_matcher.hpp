// Range matcher for the RM fields (transport ports, Table II). Stores unique
// ranges with labels; lookup returns all ranges containing a key, narrowest
// first ("the narrowest range is selected", Section III.A).
//
// Implementation: project the unique ranges onto elementary intervals over
// the sorted endpoint list; each elementary interval precomputes its matching
// label list. Lookup is a binary search — the hardware analogue is a small
// range-tree stage.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/prefix.hpp"

namespace ofmtl {

class RangeMatcher {
 public:
  explicit RangeMatcher(unsigned width) : width_(width) {}

  /// Register a range, returning its label (existing label if seen before).
  /// Ranges are reference-counted: adding the same range twice requires two
  /// removes to drop it.
  std::uint32_t add(const ValueRange& range);

  /// Drop one reference to a range; at zero references the range stops
  /// matching. Returns whether the range was present. Call seal() before
  /// the next lookup.
  bool remove(const ValueRange& range);

  /// Label of a live range, if registered.
  [[nodiscard]] std::optional<std::uint32_t> find(const ValueRange& range) const;

  /// Finish construction: build the elementary-interval index.
  void seal();

  /// Labels of all ranges containing `key`, narrowest first. seal() first.
  [[nodiscard]] const std::vector<std::uint32_t>& lookup(std::uint64_t key) const;

  /// Batched lookup: out[i] = &lookup(keys[i]) (pointers into the sealed
  /// interval index; valid until the next seal()). The per-key binary
  /// searches run level-synchronously across a lane window with software
  /// prefetch of each lane's next probe, overlapping the dependent loads a
  /// scalar search chain serializes.
  void lookup_batch(std::span<const std::uint64_t> keys,
                    std::span<const std::vector<std::uint32_t>*> out) const;

  /// Narrowest matching range label (RM semantics).
  [[nodiscard]] std::optional<std::uint32_t> lookup_narrowest(std::uint64_t key) const;

  /// Live (reference-held) unique ranges.
  [[nodiscard]] std::size_t unique_ranges() const;
  [[nodiscard]] const ValueRange& range_of(std::uint32_t label) const {
    return ranges_.at(label);
  }
  [[nodiscard]] unsigned width() const { return width_; }

  /// Memory cost: interval boundaries (width bits each) plus per-interval
  /// label lists (label_bits per stored label).
  [[nodiscard]] std::uint64_t storage_bits(unsigned label_bits) const;

 private:
  unsigned width_;
  std::vector<ValueRange> ranges_;            // label -> range (labels persist)
  std::vector<std::uint32_t> refs_;           // label -> reference count
  std::vector<std::uint64_t> boundaries_;     // sorted interval starts
  std::vector<std::vector<std::uint32_t>> interval_labels_;
  bool sealed_ = false;
  static const std::vector<std::uint32_t> kEmpty;
};

}  // namespace ofmtl
