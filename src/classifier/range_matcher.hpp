// Range matcher for the RM fields (transport ports, Table II). Stores unique
// ranges with labels; lookup returns all ranges containing a key, narrowest
// first ("the narrowest range is selected", Section III.A).
//
// Implementation: project the unique ranges onto elementary intervals over
// the sorted endpoint list; each elementary interval precomputes its matching
// label list. The endpoints live in an incremental interval event map
// (point -> ranges opening/closing there), so add/remove are O(log n) and
// seal() is a single sweep over the events instead of the former
// O(ranges x boundaries) rescan. For narrow fields (width <= 16) seal()
// additionally lays the boundaries out as a rank-select bitmap: a point
// lookup is then one word load + popcount, no search at all. Wider fields
// keep the sorted array and a branchless uniform-length binary search
// (vectorized with AVX2 gathers in batch mode).
#pragma once

#include <bit>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "net/prefix.hpp"

namespace ofmtl {

class RangeMatcher {
 public:
  explicit RangeMatcher(unsigned width) : width_(width) {}

  /// Register a range, returning its label (existing label if seen before).
  /// Ranges are reference-counted: adding the same range twice requires two
  /// removes to drop it. O(log unique_ranges).
  std::uint32_t add(const ValueRange& range);

  /// Drop one reference to a range; at zero references the range stops
  /// matching. Returns whether the range was present. Call seal() before
  /// the next lookup. O(log unique_ranges).
  bool remove(const ValueRange& range);

  /// Label of a live range, if registered.
  [[nodiscard]] std::optional<std::uint32_t> find(const ValueRange& range) const;

  /// Finish construction: sweep the event map into the elementary-interval
  /// index (and the rank-select bitmap on narrow fields). A no-op when the
  /// live set is untouched since the last sweep — seal_sweeps() counts the
  /// sweeps that actually ran, so any amount of churn followed by a reseal
  /// costs one sweep, and resealing an untouched matcher costs none.
  void seal();

  /// Labels of all ranges containing `key`, narrowest first. seal() first.
  [[nodiscard]] const std::vector<std::uint32_t>& lookup(std::uint64_t key) const;

  /// Batched lookup: out[i] = &lookup(keys[i]) (pointers into the sealed
  /// interval index; valid until the next seal()). Narrow fields resolve
  /// every lane with the rank-select bitmap (compare-free); wide fields run
  /// a uniform-length branchless binary search across the lane window —
  /// 8 lanes per AVX2 gather step when the CPU has it, otherwise a
  /// software-prefetched scalar window.
  void lookup_batch(std::span<const std::uint64_t> keys,
                    std::span<const std::vector<std::uint32_t>*> out) const;

  /// Narrowest matching range label (RM semantics).
  [[nodiscard]] std::optional<std::uint32_t> lookup_narrowest(std::uint64_t key) const;

  /// Live (reference-held) unique ranges.
  [[nodiscard]] std::size_t unique_ranges() const;
  [[nodiscard]] const ValueRange& range_of(std::uint32_t label) const {
    return ranges_.at(label);
  }
  [[nodiscard]] unsigned width() const { return width_; }

  /// Sweeps seal() actually performed (observability for the amortized
  /// incremental path: a reseal with no live-set change must not sweep).
  [[nodiscard]] std::uint64_t seal_sweeps() const { return seal_sweeps_; }

  /// Memory cost: interval boundaries (width bits each) plus per-interval
  /// label lists (label_bits per stored label).
  [[nodiscard]] std::uint64_t storage_bits(unsigned label_bits) const;

 private:
  /// Ranges opening (lo == point) and closing (hi + 1 == point) at one
  /// elementary-interval boundary. Kept current by add/remove, so seal()
  /// never rescans the range list.
  struct BoundaryEvents {
    std::vector<std::uint32_t> opens;
    std::vector<std::uint32_t> closes;
  };

  void add_events(std::uint32_t label);
  void remove_events(std::uint32_t label);
  /// Interval index of the last boundary <= key (rank-select fast path).
  [[nodiscard]] std::size_t rank_index(std::uint64_t key) const {
    const std::size_t word = key >> 6;
    const std::uint64_t below = ~std::uint64_t{0} >> (63 - (key & 63));
    return rank_dir_[word] + static_cast<std::size_t>(std::popcount(
                                 rank_bits_[word] & below)) -
           1;
  }

  unsigned width_;
  std::vector<ValueRange> ranges_;            // label -> range (labels persist)
  std::vector<std::uint32_t> refs_;           // label -> reference count
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t>
      range_index_;                           // (lo, hi) -> label, persists
  std::map<std::uint64_t, BoundaryEvents> events_;  // live boundaries only
  std::vector<std::uint64_t> boundaries_;     // sorted interval starts
  std::vector<std::vector<std::uint32_t>> interval_labels_;
  // Rank-select layout (width_ <= kRankSelectMaxWidth): bit b of rank_bits_
  // set iff b is an interval boundary; rank_dir_[w] = boundaries strictly
  // below word w. The interval containing key is then
  // rank(key) - 1 = rank_dir_[key/64] + popcount(bits below key in word) - 1
  // — exactly the index upper_bound - 1 would find, without the search.
  std::vector<std::uint64_t> rank_bits_;
  std::vector<std::uint32_t> rank_dir_;
  bool sealed_ = false;
  std::uint64_t seal_sweeps_ = 0;
};

}  // namespace ofmtl
