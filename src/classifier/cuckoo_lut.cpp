#include "classifier/cuckoo_lut.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ofmtl {

namespace {
constexpr std::size_t kInitialTableSize = 8;
constexpr std::size_t kMaxKickChain = 64;
}  // namespace

CuckooLut::CuckooLut(unsigned key_bits)
    : key_bits_(key_bits), table_size_(kInitialTableSize) {
  if (key_bits == 0 || key_bits > 128) throw std::invalid_argument("bad key width");
  tables_[0].resize(table_size_);
  tables_[1].resize(table_size_);
}

std::size_t CuckooLut::index_of(const U128& value, unsigned table) const {
  std::uint64_t h = detail::U128Hash{}(value);
  if (table == 1) {
    // Independent second hash: remix.
    h ^= 0x94D049BB133111EBULL;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 29;
  }
  return static_cast<std::size_t>(h) & (table_size_ - 1);
}

bool CuckooLut::place(const U128& value, Label label) {
  U128 current = value;
  Label current_label = label;
  unsigned table = 0;
  for (std::size_t kick = 0; kick < kMaxKickChain; ++kick) {
    // Try both candidate buckets of the current item before evicting.
    for (const unsigned t : {table, table ^ 1U}) {
      Bucket& bucket = tables_[t][index_of(current, t)];
      for (auto& slot : bucket.slots) {
        if (!slot.value) {
          slot.value = current;
          slot.label = current_label;
          return true;
        }
      }
    }
    // Both full: evict a pseudo-randomly chosen victim from this table's
    // bucket and retry it in its other table (deterministic victim choice
    // forms short kick cycles that trigger premature growth).
    Bucket& bucket = tables_[table][index_of(current, table)];
    const std::size_t pick =
        (detail::U128Hash{}(current) >> 17 ^ kick * 0x9E3779B9ULL) %
        kBucketSlots;
    Slot& victim = bucket.slots[pick];
    std::swap(current, *victim.value);
    std::swap(current_label, victim.label);
    ++relocations_;
    table ^= 1U;
  }
  // Kick chain too long: stash the displaced element by growing.
  const U128 stashed = current;
  const Label stashed_label = current_label;
  grow();
  return place(stashed, stashed_label);
}

void CuckooLut::grow() {
  std::vector<Bucket> old0 = std::move(tables_[0]);
  std::vector<Bucket> old1 = std::move(tables_[1]);
  table_size_ *= 2;
  tables_[0].assign(table_size_, Bucket{});
  tables_[1].assign(table_size_, Bucket{});
  for (const auto* old : {&old0, &old1}) {
    for (const auto& bucket : *old) {
      for (const auto& slot : bucket.slots) {
        if (slot.value) (void)place(*slot.value, slot.label);
      }
    }
  }
}

Label CuckooLut::insert(const U128& value) {
  if (const auto existing = lookup(value)) return *existing;
  const Label label = encoder_.encode(value);
  // 2-way bucketized cuckoo runs fine to ~90% combined load.
  if (live_count_ + 1 > (slot_count() * 9) / 10) grow();
  (void)place(value, label);
  ++live_count_;
  return label;
}

bool CuckooLut::remove(const U128& value) {
  for (unsigned table = 0; table < 2; ++table) {
    Bucket& bucket = tables_[table][index_of(value, table)];
    for (auto& slot : bucket.slots) {
      if (slot.value && *slot.value == value) {
        slot.value.reset();
        slot.label = kNoLabel;
        --live_count_;
        return true;
      }
    }
  }
  return false;
}

void CuckooLut::lookup_batch(std::span<const U128> values,
                             std::span<Label> out) const {
  if (out.size() < values.size()) {
    throw std::invalid_argument("lookup_batch: out span too small");
  }
  constexpr std::size_t kLanes = 8;
  for (std::size_t base = 0; base < values.size(); base += kLanes) {
    const std::size_t lanes = std::min(kLanes, values.size() - base);
    std::size_t index[2][kLanes];
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      for (unsigned table = 0; table < 2; ++table) {
        index[table][lane] = index_of(values[base + lane], table);
        __builtin_prefetch(tables_[table].data() + index[table][lane]);
      }
    }
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const U128& value = values[base + lane];
      Label label = kNoLabel;
      for (unsigned table = 0; table < 2 && label == kNoLabel; ++table) {
        const Bucket& bucket = tables_[table][index[table][lane]];
        for (const auto& slot : bucket.slots) {
          if (slot.value && *slot.value == value) {
            label = slot.label;
            break;
          }
        }
      }
      out[base + lane] = label;
    }
  }
}

std::optional<Label> CuckooLut::lookup(const U128& value) const {
  for (unsigned table = 0; table < 2; ++table) {
    const Bucket& bucket = tables_[table][index_of(value, table)];
    for (const auto& slot : bucket.slots) {
      if (slot.value && *slot.value == value) return slot.label;
    }
  }
  return std::nullopt;
}

mem::MemoryReport CuckooLut::memory_report(const std::string& name) const {
  mem::MemoryReport report;
  report.add(name, slot_count(), slot_bits());
  return report;
}

}  // namespace ofmtl
