#include "classifier/range_matcher.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/simd.hpp"

namespace ofmtl {

namespace {

/// Fields at most this wide get the rank-select boundary bitmap (2^16 bits
/// = 8 KiB worst case — smaller than the L1 the search would thrash).
constexpr unsigned kRankSelectMaxWidth = 16;

}  // namespace

std::uint32_t RangeMatcher::add(const ValueRange& range) {
  if (range.lo > range.hi || range.hi > low_mask(width_)) {
    throw std::invalid_argument("bad range");
  }
  const auto it = range_index_.find({range.lo, range.hi});
  if (it != range_index_.end()) {
    const std::uint32_t label = it->second;
    if (refs_[label]++ == 0) {  // revival
      add_events(label);
      sealed_ = false;
    }
    return label;
  }
  const auto label = static_cast<std::uint32_t>(ranges_.size());
  ranges_.push_back(range);
  refs_.push_back(1);
  range_index_.emplace(std::make_pair(range.lo, range.hi), label);
  add_events(label);
  sealed_ = false;
  return label;
}

bool RangeMatcher::remove(const ValueRange& range) {
  const auto it = range_index_.find({range.lo, range.hi});
  if (it == range_index_.end() || refs_[it->second] == 0) return false;
  if (--refs_[it->second] == 0) {
    remove_events(it->second);
    sealed_ = false;
  }
  return true;
}

std::optional<std::uint32_t> RangeMatcher::find(const ValueRange& range) const {
  const auto it = range_index_.find({range.lo, range.hi});
  if (it == range_index_.end() || refs_[it->second] == 0) return std::nullopt;
  return it->second;
}

std::size_t RangeMatcher::unique_ranges() const {
  std::size_t live = 0;
  for (const auto refs : refs_) {
    if (refs > 0) ++live;
  }
  return live;
}

void RangeMatcher::add_events(std::uint32_t label) {
  const ValueRange& range = ranges_[label];
  events_[range.lo].opens.push_back(label);
  if (range.hi < low_mask(width_)) {
    events_[range.hi + 1].closes.push_back(label);
  }
}

void RangeMatcher::remove_events(std::uint32_t label) {
  const ValueRange& range = ranges_[label];
  const auto drop = [this](std::uint64_t point, std::vector<std::uint32_t>
                                                    BoundaryEvents::*member,
                           std::uint32_t target) {
    const auto it = events_.find(point);
    auto& list = it->second.*member;
    list.erase(std::find(list.begin(), list.end(), target));
    if (it->second.opens.empty() && it->second.closes.empty()) {
      events_.erase(it);  // the point stops being a boundary
    }
  };
  drop(range.lo, &BoundaryEvents::opens, label);
  if (range.hi < low_mask(width_)) {
    drop(range.hi + 1, &BoundaryEvents::closes, label);
  }
}

void RangeMatcher::seal() {
  if (sealed_) return;  // alive set unchanged since the last sweep
  ++seal_sweeps_;
  boundaries_.clear();
  interval_labels_.clear();
  boundaries_.reserve(events_.size() + 1);
  interval_labels_.reserve(events_.size() + 1);

  // One ordered sweep over the event map: the active set gains a range at
  // its lo point and loses it at hi + 1, and every event point starts an
  // elementary interval whose label list is a snapshot of the active set.
  // `active` is kept sorted by (span, label) — the narrowest-first order the
  // lookups return — so each snapshot is a plain copy.
  std::vector<std::uint32_t> active;
  const auto narrower = [this](std::uint32_t a, std::uint32_t b) {
    if (ranges_[a].span() != ranges_[b].span()) {
      return ranges_[a].span() < ranges_[b].span();
    }
    return a < b;
  };
  const auto apply = [&](const BoundaryEvents& events) {
    for (const std::uint32_t label : events.closes) {
      active.erase(
          std::lower_bound(active.begin(), active.end(), label, narrower));
    }
    for (const std::uint32_t label : events.opens) {
      active.insert(
          std::lower_bound(active.begin(), active.end(), label, narrower),
          label);
    }
  };

  auto it = events_.begin();
  boundaries_.push_back(0);  // interval [0, first event) always exists
  if (it != events_.end() && it->first == 0) {
    apply(it->second);
    ++it;
  }
  interval_labels_.push_back(active);
  for (; it != events_.end(); ++it) {
    boundaries_.push_back(it->first);
    apply(it->second);
    interval_labels_.push_back(active);
  }

  // Narrow fields: lay the boundaries out as a rank-select bitmap so point
  // lookups become a popcount instead of a search.
  if (width_ <= kRankSelectMaxWidth) {
    const std::size_t words =
        std::max<std::size_t>((std::size_t{1} << width_) / 64, 1);
    rank_bits_.assign(words, 0);
    rank_dir_.assign(words, 0);
    for (const std::uint64_t boundary : boundaries_) {
      rank_bits_[boundary >> 6] |= std::uint64_t{1} << (boundary & 63);
    }
    std::uint32_t cumulative = 0;
    for (std::size_t w = 0; w < words; ++w) {
      rank_dir_[w] = cumulative;
      cumulative += static_cast<std::uint32_t>(std::popcount(rank_bits_[w]));
    }
  } else {
    rank_bits_.clear();
    rank_dir_.clear();
  }
  sealed_ = true;
}

const std::vector<std::uint32_t>& RangeMatcher::lookup(std::uint64_t key) const {
  if (!sealed_) throw std::logic_error("RangeMatcher::seal() not called");
  if (key > low_mask(width_)) throw std::invalid_argument("key out of field range");
  if (!rank_bits_.empty()) return interval_labels_[rank_index(key)];
  // Last boundary <= key.
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), key) - 1;
  const auto index = static_cast<std::size_t>(it - boundaries_.begin());
  return interval_labels_[index];
}

void RangeMatcher::lookup_batch(
    std::span<const std::uint64_t> keys,
    std::span<const std::vector<std::uint32_t>*> out) const {
  if (!sealed_) throw std::logic_error("RangeMatcher::seal() not called");
  if (out.size() < keys.size()) {
    throw std::invalid_argument("lookup_batch: out span too small");
  }
  constexpr std::size_t kLanes = 8;  // searches stepped in lock-step per window
  for (std::size_t base = 0; base < keys.size(); base += kLanes) {
    const std::size_t lanes = std::min(kLanes, keys.size() - base);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (keys[base + lane] > low_mask(width_)) {
        throw std::invalid_argument("key out of field range");
      }
    }
    if (!rank_bits_.empty()) {
      // Rank-select path: compare-free, one word load + popcount per lane.
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        out[base + lane] = &interval_labels_[rank_index(keys[base + lane])];
      }
      continue;
    }
    std::uint32_t lo32[kLanes];
    if (lanes == kLanes && simd::lower_bound_u64x8(boundaries_.data(),
                                                   boundaries_.size(),
                                                   keys.data() + base, lo32)) {
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        out[base + lane] = &interval_labels_[lo32[lane]];
      }
      continue;
    }
    // Scalar fallback: the same uniform-length halving the AVX2 kernel runs
    // (every lane advances by `half` or stays, length shrinks identically),
    // with each round's probes prefetched across the window before any lane
    // compares — one overlapped memory access per round instead of kLanes
    // serialized ones. boundaries_[0] == 0 establishes the invariant
    // boundaries_[lo] <= key, so each lane converges on upper_bound - 1.
    std::size_t lo[kLanes] = {};
    std::size_t len = boundaries_.size();
    while (len > 1) {
      const std::size_t half = len / 2;
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        __builtin_prefetch(boundaries_.data() + lo[lane] + half);
      }
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        lo[lane] +=
            boundaries_[lo[lane] + half] <= keys[base + lane] ? half : 0;
      }
      len -= half;
    }
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      out[base + lane] = &interval_labels_[lo[lane]];
    }
  }
}

std::optional<std::uint32_t> RangeMatcher::lookup_narrowest(
    std::uint64_t key) const {
  const auto& labels = lookup(key);
  if (labels.empty()) return std::nullopt;
  return labels.front();
}

std::uint64_t RangeMatcher::storage_bits(unsigned label_bits) const {
  std::uint64_t bits = boundaries_.size() * static_cast<std::uint64_t>(width_);
  for (const auto& labels : interval_labels_) {
    bits += labels.size() * static_cast<std::uint64_t>(label_bits);
  }
  return bits;
}

}  // namespace ofmtl

