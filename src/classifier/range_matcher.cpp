#include "classifier/range_matcher.hpp"

#include <algorithm>
#include <stdexcept>

namespace ofmtl {

const std::vector<std::uint32_t> RangeMatcher::kEmpty{};

std::uint32_t RangeMatcher::add(const ValueRange& range) {
  if (range.lo > range.hi || range.hi > low_mask(width_)) {
    throw std::invalid_argument("bad range");
  }
  for (std::uint32_t label = 0; label < ranges_.size(); ++label) {
    if (ranges_[label] == range) {
      if (refs_[label]++ == 0) sealed_ = false;  // revival
      return label;
    }
  }
  ranges_.push_back(range);
  refs_.push_back(1);
  sealed_ = false;
  return static_cast<std::uint32_t>(ranges_.size() - 1);
}

bool RangeMatcher::remove(const ValueRange& range) {
  for (std::uint32_t label = 0; label < ranges_.size(); ++label) {
    if (ranges_[label] == range && refs_[label] > 0) {
      if (--refs_[label] == 0) sealed_ = false;
      return true;
    }
  }
  return false;
}

std::optional<std::uint32_t> RangeMatcher::find(const ValueRange& range) const {
  for (std::uint32_t label = 0; label < ranges_.size(); ++label) {
    if (ranges_[label] == range && refs_[label] > 0) return label;
  }
  return std::nullopt;
}

std::size_t RangeMatcher::unique_ranges() const {
  std::size_t live = 0;
  for (const auto refs : refs_) {
    if (refs > 0) ++live;
  }
  return live;
}

void RangeMatcher::seal() {
  if (sealed_) return;  // alive set unchanged since the last build
  boundaries_.clear();
  interval_labels_.clear();
  // Elementary interval starts: each range contributes lo and hi+1.
  boundaries_.push_back(0);
  for (std::uint32_t label = 0; label < ranges_.size(); ++label) {
    if (refs_[label] == 0) continue;
    boundaries_.push_back(ranges_[label].lo);
    if (ranges_[label].hi < low_mask(width_)) {
      boundaries_.push_back(ranges_[label].hi + 1);
    }
  }
  std::sort(boundaries_.begin(), boundaries_.end());
  boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                    boundaries_.end());

  interval_labels_.resize(boundaries_.size());
  for (std::size_t i = 0; i < boundaries_.size(); ++i) {
    const std::uint64_t point = boundaries_[i];
    auto& labels = interval_labels_[i];
    for (std::uint32_t label = 0; label < ranges_.size(); ++label) {
      if (refs_[label] > 0 && ranges_[label].contains(point)) {
        labels.push_back(label);
      }
    }
    std::sort(labels.begin(), labels.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                if (ranges_[a].span() != ranges_[b].span()) {
                  return ranges_[a].span() < ranges_[b].span();
                }
                return a < b;
              });
  }
  sealed_ = true;
}

const std::vector<std::uint32_t>& RangeMatcher::lookup(std::uint64_t key) const {
  if (!sealed_) throw std::logic_error("RangeMatcher::seal() not called");
  if (key > low_mask(width_)) throw std::invalid_argument("key out of field range");
  // Last boundary <= key.
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), key) - 1;
  const auto index = static_cast<std::size_t>(it - boundaries_.begin());
  return interval_labels_.empty() ? kEmpty : interval_labels_[index];
}

void RangeMatcher::lookup_batch(
    std::span<const std::uint64_t> keys,
    std::span<const std::vector<std::uint32_t>*> out) const {
  if (!sealed_) throw std::logic_error("RangeMatcher::seal() not called");
  if (out.size() < keys.size()) {
    throw std::invalid_argument("lookup_batch: out span too small");
  }
  constexpr std::size_t kLanes = 8;  // searches stepped in lock-step per window
  for (std::size_t base = 0; base < keys.size(); base += kLanes) {
    const std::size_t lanes = std::min(kLanes, keys.size() - base);
    std::size_t lo[kLanes] = {};
    std::size_t len[kLanes];
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (keys[base + lane] > low_mask(width_)) {
        throw std::invalid_argument("key out of field range");
      }
      len[lane] = boundaries_.size();
    }
    // Level-synchronous halving: every active lane's probe element is
    // prefetched before any lane reads, so one round costs one overlapped
    // memory access instead of kLanes serialized ones. Each lane converges
    // on the last boundary <= key — the same index upper_bound-1 finds
    // (boundaries_[0] == 0, so the invariant boundaries_[lo] <= key holds
    // from the start).
    bool any_active = true;
    while (any_active) {
      any_active = false;
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        if (len[lane] > 1) {
          __builtin_prefetch(boundaries_.data() + lo[lane] + len[lane] / 2);
        }
      }
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        if (len[lane] <= 1) continue;
        const std::size_t half = len[lane] / 2;
        if (boundaries_[lo[lane] + half] <= keys[base + lane]) {
          lo[lane] += half;
          len[lane] -= half;
        } else {
          len[lane] = half;
        }
        any_active |= len[lane] > 1;
      }
    }
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      out[base + lane] =
          interval_labels_.empty() ? &kEmpty : &interval_labels_[lo[lane]];
    }
  }
}

std::optional<std::uint32_t> RangeMatcher::lookup_narrowest(
    std::uint64_t key) const {
  const auto& labels = lookup(key);
  if (labels.empty()) return std::nullopt;
  return labels.front();
}

std::uint64_t RangeMatcher::storage_bits(unsigned label_bits) const {
  std::uint64_t bits = boundaries_.size() * static_cast<std::uint64_t>(width_);
  for (const auto& labels : interval_labels_) {
    bits += labels.size() * static_cast<std::uint64_t>(label_bits);
  }
  return bits;
}

}  // namespace ofmtl
