#include "classifier/tree_bitmap.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "core/flat_hash.hpp"
#include "net/types.hpp"

namespace ofmtl {

namespace {

/// Internal-bitmap position of a prefix chunk of length `len` and value
/// `value` (the classic 2^len - 1 + value heap indexing).
[[nodiscard]] constexpr unsigned internal_position(unsigned len,
                                                   std::uint64_t value) {
  return (1U << len) - 1 + static_cast<unsigned>(value);
}

[[nodiscard]] unsigned popcount_below(std::uint64_t bits, unsigned position) {
  const std::uint64_t mask =
      position >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << position) - 1;
  return static_cast<unsigned>(std::popcount(bits & mask));
}

[[nodiscard]] unsigned popcount_below128(const U128& bits, unsigned position) {
  if (position <= 64) return popcount_below(bits.lo, position);
  return static_cast<unsigned>(std::popcount(bits.lo)) +
         popcount_below(bits.hi, position - 64);
}

[[nodiscard]] bool test_bit128(const U128& bits, unsigned position) {
  return position < 64 ? (bits.lo >> position & 1)
                       : (bits.hi >> (position - 64) & 1);
}

[[nodiscard]] U128 set_bit128(const U128& bits, unsigned position) {
  return bits | (U128{1} << position);
}

/// Position of the highest set bit; `bits` must be nonzero.
[[nodiscard]] unsigned highest_bit128(const U128& bits) {
  return bits.hi != 0
             ? 127 - static_cast<unsigned>(std::countl_zero(bits.hi))
             : 63 - static_cast<unsigned>(std::countl_zero(bits.lo));
}

}  // namespace

TreeBitmapTrie::TreeBitmapTrie(unsigned width, std::vector<unsigned> strides,
                               std::vector<std::pair<Prefix, Label>> prefixes)
    : width_(width), strides_(std::move(strides)) {
  if (width == 0 || width > 64) throw std::invalid_argument("bad trie width");
  const unsigned total = std::accumulate(strides_.begin(), strides_.end(), 0U);
  if (strides_.empty() || total != width_) {
    throw std::invalid_argument("strides must sum to key width");
  }
  for (const unsigned s : strides_) {
    if (s == 0 || s > 6) throw std::invalid_argument("tree bitmap stride <= 6");
  }
  cum_before_.resize(strides_.size());
  unsigned cum = 0;
  for (std::size_t i = 0; i < strides_.size(); ++i) {
    cum_before_[i] = cum;
    cum += strides_[i];
  }
  for (const auto& [prefix, label] : prefixes) {
    if (prefix.width() != width_) {
      throw std::invalid_argument("prefix width mismatch");
    }
    (void)label;
  }
  // Last-label-wins dedup, preserving first insertion position. Keyed on a
  // hash of (length, value) — all prefixes share width_ — so bulk builds
  // stay linear instead of quadratic in the prefix count.
  struct PrefixKeyHash {
    [[nodiscard]] std::size_t operator()(const Prefix& p) const noexcept {
      const U128 v = p.value();
      return static_cast<std::size_t>(detail::mix64(
          v.hi * 0x9E3779B97F4A7C15ULL ^ v.lo ^
          (std::uint64_t{p.length()} << 57)));
    }
  };
  std::vector<std::pair<Prefix, Label>> unique;
  unique.reserve(prefixes.size());
  std::unordered_map<Prefix, std::size_t, PrefixKeyHash> positions;
  positions.reserve(prefixes.size());
  for (const auto& entry : prefixes) {
    const auto [it, inserted] = positions.try_emplace(entry.first, unique.size());
    if (inserted) {
      unique.push_back(entry);
    } else {
      unique[it->second].second = entry.second;
    }
  }
  (void)build(0, 0, unique);

  // Precompute the longest-internal-match masks: all nodes at a level share
  // one mask table indexed by the key's chunk (2^stride entries per level,
  // ~2 KiB total for the default strides).
  mask_base_.resize(strides_.size());
  for (std::size_t level = 0; level < strides_.size(); ++level) {
    const unsigned stride = strides_[level];
    const unsigned max_len =
        level + 1 == strides_.size() ? stride : stride - 1;
    mask_base_[level] = match_masks_.size();
    for (std::uint64_t chunk = 0; chunk < (std::uint64_t{1} << stride);
         ++chunk) {
      U128 mask{};
      for (unsigned len = 0; len <= max_len; ++len) {
        mask = set_bit128(mask,
                          internal_position(len, chunk >> (stride - len)));
      }
      match_masks_.push_back(mask);
    }
  }
}

std::uint32_t TreeBitmapTrie::build(
    std::size_t level, std::uint64_t path,
    const std::vector<std::pair<Prefix, Label>>& prefixes) {
  const unsigned stride = strides_[level];
  const unsigned cum = cum_before_[level];
  const bool last = level + 1 == strides_.size();

  Node node;
  node.level = static_cast<std::uint8_t>(level);

  // Internal bitmap covers chunk lengths 0..stride-1; the last level has no
  // children, so its bitmap additionally covers full-stride chunks.
  std::vector<Label> local_results((std::size_t{1} << (stride + 1)) - 1,
                                   kNoLabel);
  std::vector<std::vector<std::pair<Prefix, Label>>> per_child(
      std::size_t{1} << stride);

  for (const auto& [prefix, label] : prefixes) {
    if (prefix.length() < cum) continue;  // ended at an ancestor node
    const unsigned remaining = prefix.length() - cum;
    if (remaining < stride || (remaining == stride && last)) {
      const std::uint64_t chunk_value =
          remaining == 0 ? 0 : prefix.slice(cum, remaining);
      const unsigned position = internal_position(remaining, chunk_value);
      node.internal = set_bit128(node.internal, position);
      local_results[position] = label;
    } else {
      // Descends: full-stride chunk addresses the child (a prefix with
      // remaining == stride ends at length 0 inside that child).
      const std::uint64_t chunk = prefix.slice(cum, stride);
      per_child[chunk].emplace_back(prefix, label);
    }
  }

  const auto node_index = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(node);

  // Results stored contiguously in bitmap order.
  nodes_[node_index].result_base = static_cast<std::uint32_t>(results_.size());
  for (std::size_t position = 0; position < local_results.size(); ++position) {
    if (test_bit128(nodes_[node_index].internal,
                    static_cast<unsigned>(position))) {
      results_.push_back(local_results[position]);
    }
  }

  std::vector<std::uint64_t> child_chunks;
  for (std::uint64_t chunk = 0; chunk < per_child.size(); ++chunk) {
    if (!per_child[chunk].empty()) {
      nodes_[node_index].external |= std::uint64_t{1} << chunk;
      child_chunks.push_back(chunk);
    }
  }
  if (!child_chunks.empty()) {
    // Reserve the dense child-table span first so popcount addressing works,
    // then fill it as the depth-first recursion returns.
    const auto base = static_cast<std::uint32_t>(child_table_.size());
    nodes_[node_index].child_base = base;
    child_table_.resize(child_table_.size() + child_chunks.size());
    for (std::size_t i = 0; i < child_chunks.size(); ++i) {
      const std::uint64_t chunk = child_chunks[i];
      const std::uint64_t child_path =
          path | (chunk << (width_ - cum - stride));
      child_table_[base + i] = build(level + 1, child_path, per_child[chunk]);
    }
  }
  return node_index;
}

std::optional<Label> TreeBitmapTrie::lookup(std::uint64_t key) const {
  if (nodes_.empty()) return std::nullopt;
  std::optional<Label> best;
  std::uint32_t node_index = 0;
  for (std::size_t level = 0; level < strides_.size(); ++level) {
    const Node& node = nodes_[node_index];
    const unsigned stride = strides_[level];
    const std::uint64_t chunk =
        (key >> (width_ - cum_before_[level] - stride)) & low_mask(stride);
    // Longest internal prefix: one AND against the precomputed ancestor
    // mask; positions grow with length, so the highest surviving bit is the
    // longest match (replacing the per-length probe loop).
    const U128 matched =
        node.internal & match_masks_[mask_base_[level] + chunk];
    if (matched != U128{}) {
      const unsigned position = highest_bit128(matched);
      best = results_[node.result_base +
                      popcount_below128(node.internal, position)];
    }
    if (!(node.external >> chunk & 1)) break;
    const std::uint32_t slot =
        node.child_base + popcount_below(node.external, static_cast<unsigned>(chunk));
    node_index = child_table_[slot];
  }
  return best;
}

void TreeBitmapTrie::lookup_batch(std::span<const std::uint64_t> keys,
                                  std::span<std::optional<Label>> out) const {
  if (out.size() < keys.size()) {
    throw std::invalid_argument("lookup_batch: out span too small");
  }
  constexpr std::size_t kLanes = 8;
  for (std::size_t base = 0; base < keys.size(); base += kLanes) {
    const std::size_t lanes = std::min(kLanes, keys.size() - base);
    std::uint32_t node[kLanes] = {};
    std::uint32_t slot[kLanes] = {};
    bool active[kLanes];
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      out[base + lane] = std::nullopt;
      active[lane] = !nodes_.empty();
      if (active[lane]) __builtin_prefetch(nodes_.data());
    }
    // Lock-step descent: each level first resolves every lane's node (match
    // the internal bitmap, locate the child slot, prefetch the child-table
    // line), then chases every lane's child pointer (prefetching the next
    // node) — so no lane ever stalls on a load another lane could have
    // started.
    for (std::size_t level = 0; level < strides_.size(); ++level) {
      const unsigned stride = strides_[level];
      const unsigned shift = width_ - cum_before_[level] - stride;
      const U128* masks = match_masks_.data() + mask_base_[level];
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        if (!active[lane]) continue;
        const Node& nd = nodes_[node[lane]];
        const std::uint64_t chunk =
            (keys[base + lane] >> shift) & low_mask(stride);
        // Branch-light longest internal match: AND + highest-set-bit against
        // the shared per-level mask table (see lookup()).
        const U128 matched = nd.internal & masks[chunk];
        if (matched != U128{}) {
          const unsigned position = highest_bit128(matched);
          out[base + lane] =
              results_[nd.result_base +
                       popcount_below128(nd.internal, position)];
        }
        if (!(nd.external >> chunk & 1)) {
          active[lane] = false;
          continue;
        }
        slot[lane] = nd.child_base +
                     popcount_below(nd.external, static_cast<unsigned>(chunk));
        __builtin_prefetch(child_table_.data() + slot[lane]);
      }
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        if (!active[lane]) continue;
        node[lane] = child_table_[slot[lane]];
        __builtin_prefetch(nodes_.data() + node[lane]);
      }
    }
  }
}

std::size_t TreeBitmapTrie::node_count(std::size_t level) const {
  std::size_t count = 0;
  for (const auto& node : nodes_) {
    if (node.level == level) ++count;
  }
  return count;
}

unsigned TreeBitmapTrie::node_bits(std::size_t level, unsigned label_bits) const {
  const unsigned stride = strides_.at(level);
  const bool last = level + 1 == strides_.size();
  const unsigned internal_bits = (1U << (last ? stride + 1 : stride)) - 1;
  const unsigned external_bits = last ? 0 : (1U << stride);
  const unsigned child_ptr = last ? 0 : bits_for_max_value(nodes_.size());
  const unsigned result_ptr =
      bits_for_max_value(std::max<std::size_t>(results_.size(), 1));
  (void)label_bits;
  return internal_bits + external_bits + child_ptr + result_ptr;
}

std::uint64_t TreeBitmapTrie::total_bits(unsigned label_bits) const {
  std::uint64_t bits = 0;
  for (std::size_t level = 0; level < strides_.size(); ++level) {
    bits += node_count(level) * node_bits(level, label_bits);
  }
  bits += results_.size() * static_cast<std::uint64_t>(label_bits);
  bits += child_table_.size() *
          static_cast<std::uint64_t>(bits_for_max_value(nodes_.size()));
  return bits;
}

mem::MemoryReport TreeBitmapTrie::memory_report(const std::string& name,
                                                unsigned label_bits) const {
  mem::MemoryReport report;
  for (std::size_t level = 0; level < strides_.size(); ++level) {
    report.add(name + ".L" + std::to_string(level + 1), node_count(level),
               node_bits(level, label_bits));
  }
  report.add(name + ".results", results_.size(), label_bits);
  report.add(name + ".child_table", child_table_.size(),
             bits_for_max_value(nodes_.size()));
  return report;
}

}  // namespace ofmtl
