#include "classifier/unibit_trie.hpp"

#include <stdexcept>

namespace ofmtl {

UnibitTrie::UnibitTrie(unsigned width) : width_(width) {
  if (width == 0 || width > 64) throw std::invalid_argument("bad trie width");
  nodes_.emplace_back();  // root
}

void UnibitTrie::insert(const Prefix& prefix, std::uint32_t value) {
  if (prefix.width() != width_) throw std::invalid_argument("prefix width mismatch");
  std::size_t node = 0;
  for (unsigned depth = 0; depth < prefix.length(); ++depth) {
    const unsigned bit =
        static_cast<unsigned>((prefix.value64() >> (width_ - 1 - depth)) & 1);
    if (nodes_[node].child[bit] < 0) {
      nodes_[node].child[bit] = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    node = static_cast<std::size_t>(nodes_[node].child[bit]);
  }
  if (!nodes_[node].value) ++prefix_count_;
  nodes_[node].value = value;
}

bool UnibitTrie::remove(const Prefix& prefix) {
  if (prefix.width() != width_) throw std::invalid_argument("prefix width mismatch");
  std::size_t node = 0;
  for (unsigned depth = 0; depth < prefix.length(); ++depth) {
    const unsigned bit =
        static_cast<unsigned>((prefix.value64() >> (width_ - 1 - depth)) & 1);
    if (nodes_[node].child[bit] < 0) return false;
    node = static_cast<std::size_t>(nodes_[node].child[bit]);
  }
  if (!nodes_[node].value) return false;
  nodes_[node].value.reset();
  --prefix_count_;
  return true;
}

std::optional<std::uint32_t> UnibitTrie::lookup(std::uint64_t key) const {
  std::optional<std::uint32_t> best;
  std::size_t node = 0;
  for (unsigned depth = 0;; ++depth) {
    if (nodes_[node].value) best = nodes_[node].value;
    if (depth == width_) break;
    const unsigned bit = static_cast<unsigned>((key >> (width_ - 1 - depth)) & 1);
    if (nodes_[node].child[bit] < 0) break;
    node = static_cast<std::size_t>(nodes_[node].child[bit]);
  }
  return best;
}

std::vector<std::uint32_t> UnibitTrie::lookup_all(std::uint64_t key) const {
  std::vector<std::uint32_t> matches;
  std::size_t node = 0;
  for (unsigned depth = 0;; ++depth) {
    if (nodes_[node].value) matches.push_back(*nodes_[node].value);
    if (depth == width_) break;
    const unsigned bit = static_cast<unsigned>((key >> (width_ - 1 - depth)) & 1);
    if (nodes_[node].child[bit] < 0) break;
    node = static_cast<std::size_t>(nodes_[node].child[bit]);
  }
  return matches;
}

}  // namespace ofmtl
