// Two-choice cuckoo hash table — an alternative EM structure for the
// ablation against the paper's linear-probing LUT. Cuckoo tables reach much
// higher load factors (fewer slots for the same value count, i.e. less
// memory) at the cost of a bounded worst case of 2 parallel reads per
// lookup and occasional relocation chains on insert.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/label.hpp"
#include "mem/memory_model.hpp"
#include "net/types.hpp"

namespace ofmtl {

class CuckooLut {
 public:
  explicit CuckooLut(unsigned key_bits);

  /// Insert a value, returning its stable label.
  Label insert(const U128& value);

  /// Remove a value (no tombstones needed — cuckoo deletion is exact).
  bool remove(const U128& value);

  [[nodiscard]] std::optional<Label> lookup(const U128& value) const;

  /// Batched lookup: out[i] = label of values[i], kNoLabel on miss. Both
  /// candidate buckets of every lane in a window are prefetched before any
  /// lane reads — the cuckoo invariant (a value lives in one of exactly two
  /// buckets) makes the whole batch two overlapped memory rounds.
  void lookup_batch(std::span<const U128> values, std::span<Label> out) const;

  [[nodiscard]] std::size_t unique_values() const { return live_count_; }
  [[nodiscard]] std::size_t slot_count() const {
    return 2 * kBucketSlots * table_size_;
  }
  [[nodiscard]] unsigned key_bits() const { return key_bits_; }
  [[nodiscard]] unsigned slot_bits() const {
    return 1 + key_bits_ + encoder_.label_bits();
  }
  [[nodiscard]] std::uint64_t storage_bits() const {
    return slot_count() * static_cast<std::uint64_t>(slot_bits());
  }
  [[nodiscard]] mem::MemoryReport memory_report(const std::string& name) const;

  /// Relocations performed over the table's lifetime (insert-cost metric).
  [[nodiscard]] std::uint64_t relocations() const { return relocations_; }

 private:
  /// Two slots per bucket (2-way bucketized cuckoo): reaches ~90% combined
  /// load before kick chains explode, vs ~50% for single-slot buckets.
  static constexpr unsigned kBucketSlots = 2;

  struct Slot {
    std::optional<U128> value;
    Label label = kNoLabel;
  };
  struct Bucket {
    Slot slots[kBucketSlots];
  };

  [[nodiscard]] std::size_t index_of(const U128& value, unsigned table) const;
  bool place(const U128& value, Label label);
  void grow();

  unsigned key_bits_;
  std::size_t table_size_;  // buckets per table
  std::vector<Bucket> tables_[2];
  ValueLabelEncoder encoder_;
  std::size_t live_count_ = 0;
  std::uint64_t relocations_ = 0;
};

}  // namespace ofmtl
