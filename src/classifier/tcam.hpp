// TCAM model — the hardware-based baseline of Table I and the structure the
// paper's architecture is designed to replace. Functionally a priority-
// ordered ternary match; the model also accounts the memory and search-energy
// costs that motivate the replacement (Section II: "high power consumption,
// storage limitation and the difficulty of rule ternary conversion").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "flow/flow_entry.hpp"
#include "mem/memory_model.hpp"

namespace ofmtl {

/// One ternary word: bit i matches when (key & mask) == value.
struct TernaryEntry {
  U128 value{};
  U128 mask{};
  std::uint32_t rule = 0;       ///< rule index the entry belongs to
  std::uint16_t priority = 0;

  [[nodiscard]] bool matches(const U128& key) const {
    return (key & mask) == value;
  }
};

/// A TCAM over a fixed field list. Rules are converted to ternary entries;
/// range fields expand into multiple entries (range-to-prefix conversion) —
/// the "rule ternary conversion" cost the paper cites.
class TcamModel {
 public:
  explicit TcamModel(std::vector<FieldId> fields);

  /// Add one rule; returns the number of ternary entries it expanded into.
  std::size_t add_rule(const FlowMatch& match, std::uint16_t priority,
                       std::uint32_t rule_index);

  /// Highest-priority matching rule index.
  [[nodiscard]] std::optional<std::uint32_t> lookup(const PacketHeader& header) const;

  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }
  [[nodiscard]] unsigned word_bits() const { return word_bits_; }

  /// TCAM storage: every entry holds value+mask (2 bits of cell per key bit).
  [[nodiscard]] std::uint64_t storage_bits() const {
    return entries_.size() * 2ULL * word_bits_;
  }
  /// Search-energy proxy: a TCAM activates every cell on every lookup.
  [[nodiscard]] std::uint64_t cells_searched_per_lookup() const {
    return entries_.size() * static_cast<std::uint64_t>(word_bits_);
  }

  [[nodiscard]] mem::MemoryReport memory_report() const;

 private:
  [[nodiscard]] U128 concatenate_key(const PacketHeader& header) const;

  std::vector<FieldId> fields_;
  unsigned word_bits_ = 0;
  std::vector<TernaryEntry> entries_;  // kept sorted by descending priority
};

}  // namespace ofmtl
