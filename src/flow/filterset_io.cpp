#include "flow/filterset_io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "net/addresses.hpp"

namespace ofmtl {

namespace {

void write_field_match(std::ostream& out, const FieldMatch& fm) {
  switch (fm.kind) {
    case MatchKind::kAny:
      out << "*";
      break;
    case MatchKind::kExact:
      out << "=" << std::hex << fm.value.hi;
      out << ":" << fm.value.lo << std::dec;
      break;
    case MatchKind::kPrefix: {
      const U128 v = fm.prefix.value();
      out << std::hex << v.hi << ":" << v.lo << std::dec << "/" << fm.prefix.length()
          << "w" << fm.prefix.width();
      break;
    }
    case MatchKind::kRange:
      out << "[" << fm.range.lo << "-" << fm.range.hi << "]";
      break;
    case MatchKind::kMasked:
      out << "&" << std::hex << fm.mask.lo << "=" << fm.value.lo << std::dec;
      break;
  }
}

[[nodiscard]] std::uint64_t parse_u64(std::string_view text, int base = 10) {
  std::uint64_t value = 0;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), value, base);
  if (result.ec != std::errc{} || result.ptr != text.data() + text.size()) {
    throw std::invalid_argument("bad number: " + std::string(text));
  }
  return value;
}

[[nodiscard]] FieldMatch parse_field_match(const std::string& token) {
  if (token == "*") return FieldMatch::any();
  if (token.front() == '=') {
    const auto colon = token.find(':');
    const std::uint64_t hi = parse_u64(std::string_view(token).substr(1, colon - 1), 16);
    const std::uint64_t lo = parse_u64(std::string_view(token).substr(colon + 1), 16);
    return FieldMatch::exact(U128{hi, lo});
  }
  if (token.front() == '[') {
    const auto dash = token.find('-');
    const std::uint64_t lo = parse_u64(std::string_view(token).substr(1, dash - 1));
    const std::uint64_t hi = parse_u64(
        std::string_view(token).substr(dash + 1, token.size() - dash - 2));
    return FieldMatch::of_range(lo, hi);
  }
  if (token.front() == '&') {
    const auto eq = token.find('=');
    const std::uint64_t mask = parse_u64(std::string_view(token).substr(1, eq - 1), 16);
    const std::uint64_t value = parse_u64(std::string_view(token).substr(eq + 1), 16);
    return FieldMatch::masked(U128{value}, U128{mask});
  }
  // prefix: HI:LO/LENwWIDTH
  const auto colon = token.find(':');
  const auto slash = token.find('/');
  const auto w = token.find('w');
  if (colon == std::string::npos || slash == std::string::npos ||
      w == std::string::npos) {
    throw std::invalid_argument("bad field spec: " + token);
  }
  const std::uint64_t hi = parse_u64(std::string_view(token).substr(0, colon), 16);
  const std::uint64_t lo =
      parse_u64(std::string_view(token).substr(colon + 1, slash - colon - 1), 16);
  const auto length =
      static_cast<unsigned>(parse_u64(std::string_view(token).substr(slash + 1, w - slash - 1)));
  const auto width =
      static_cast<unsigned>(parse_u64(std::string_view(token).substr(w + 1)));
  return FieldMatch::of_prefix(Prefix{U128{hi, lo}, length, width});
}

}  // namespace

void write_filterset(std::ostream& out, const FilterSet& set) {
  out << "# name: " << set.name << "\n";
  out << "# fields:";
  for (const auto id : set.fields) out << " " << static_cast<unsigned>(id);
  out << "\n";
  for (const auto& entry : set.entries) {
    out << entry.id << " " << entry.priority;
    for (const auto id : set.fields) {
      out << " ";
      write_field_match(out, entry.match.get(id));
    }
    out << " -> ";
    if (entry.instructions.goto_table) {
      out << "goto:" << static_cast<unsigned>(*entry.instructions.goto_table);
    } else {
      out << "end";
    }
    std::uint32_t port = 0;
    for (const auto& a : entry.instructions.write_actions) {
      if (std::holds_alternative<OutputAction>(a)) {
        port = std::get<OutputAction>(a).port;
      }
    }
    out << " out:" << port << "\n";
  }
}

std::string filterset_to_string(const FilterSet& set) {
  std::ostringstream out;
  write_filterset(out, set);
  return out.str();
}

FilterSet parse_filterset(std::istream& in) {
  FilterSet set;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# name:", 0) == 0) {
      set.name = line.substr(8);
      continue;
    }
    if (line.rfind("# fields:", 0) == 0) {
      std::istringstream fields(line.substr(9));
      unsigned id = 0;
      while (fields >> id) set.fields.push_back(static_cast<FieldId>(id));
      continue;
    }
    if (line.front() == '#') continue;
    std::istringstream tokens(line);
    FlowEntry entry;
    tokens >> entry.id >> entry.priority;
    for (const auto id : set.fields) {
      std::string token;
      tokens >> token;
      entry.match.set(id, parse_field_match(token));
    }
    std::string arrow, target, out_token;
    tokens >> arrow >> target >> out_token;
    if (arrow != "->") throw std::invalid_argument("bad rule line: " + line);
    if (target.rfind("goto:", 0) == 0) {
      entry.instructions.goto_table =
          static_cast<std::uint8_t>(parse_u64(std::string_view(target).substr(5)));
    }
    if (out_token.rfind("out:", 0) == 0) {
      const auto port =
          static_cast<std::uint32_t>(parse_u64(std::string_view(out_token).substr(4)));
      if (port != 0 || !entry.instructions.goto_table) {
        entry.instructions.write_actions.push_back(OutputAction{port});
      }
    }
    set.entries.push_back(std::move(entry));
  }
  return set;
}

FilterSet parse_filterset_string(const std::string& text) {
  std::istringstream in(text);
  return parse_filterset(in);
}

FlowMatch parse_classbench_rule(const std::string& line) {
  // "@1.2.3.0/24  5.6.7.8/32  0 : 65535  1024 : 2048  0x06/0xFF"
  std::string text = line;
  if (!text.empty() && text.front() == '@') text.erase(0, 1);
  std::istringstream in(text);
  std::string src, dst, slo, colon1, shi, dlo, colon2, dhi, proto;
  in >> src >> dst >> slo >> colon1 >> shi >> dlo >> colon2 >> dhi >> proto;
  if (colon1 != ":" || colon2 != ":") {
    throw std::invalid_argument("bad classbench line: " + line);
  }
  const auto parse_cidr = [](const std::string& cidr) {
    const auto slash = cidr.find('/');
    const auto ip = Ipv4Address::parse(cidr.substr(0, slash));
    const auto len = static_cast<unsigned>(parse_u64(
        std::string_view(cidr).substr(slash + 1)));
    return Prefix::from_value(ip.value(), len, 32);
  };
  FlowMatch match;
  match.set(FieldId::kIpv4Src, FieldMatch::of_prefix(parse_cidr(src)));
  match.set(FieldId::kIpv4Dst, FieldMatch::of_prefix(parse_cidr(dst)));
  match.set(FieldId::kSrcPort, FieldMatch::of_range(parse_u64(slo), parse_u64(shi)));
  match.set(FieldId::kDstPort, FieldMatch::of_range(parse_u64(dlo), parse_u64(dhi)));
  const auto slash = proto.find('/');
  const std::uint64_t value = parse_u64(std::string_view(proto).substr(2, slash - 2), 16);
  const std::uint64_t mask =
      parse_u64(std::string_view(proto).substr(slash + 3), 16);
  if (mask != 0) {
    match.set(FieldId::kIpProto, FieldMatch::masked(U128{value}, U128{mask}));
  }
  return match;
}

std::string to_classbench_rule(const FlowMatch& match) {
  std::ostringstream out;
  const auto cidr = [](const FieldMatch& fm) {
    const auto& p = fm.prefix;
    return Ipv4Address{static_cast<std::uint32_t>(p.value64())}.to_string() + "/" +
           std::to_string(p.length());
  };
  out << "@" << cidr(match.get(FieldId::kIpv4Src)) << "\t"
      << cidr(match.get(FieldId::kIpv4Dst)) << "\t";
  const auto& sp = match.get(FieldId::kSrcPort).range;
  const auto& dp = match.get(FieldId::kDstPort).range;
  out << sp.lo << " : " << sp.hi << "\t" << dp.lo << " : " << dp.hi << "\t";
  const auto& proto = match.get(FieldId::kIpProto);
  if (proto.kind == MatchKind::kMasked) {
    out << "0x" << std::hex << proto.value.lo << "/0x" << proto.mask.lo << std::dec;
  } else {
    out << "0x00/0x00";
  }
  return out.str();
}

}  // namespace ofmtl
