#include "flow/flow_table.hpp"

#include <algorithm>

namespace ofmtl {

void FlowTable::insert(FlowEntry entry) {
  // First position with strictly lower priority keeps insertion stable among
  // equal-priority entries.
  const auto pos = std::find_if(entries_.begin(), entries_.end(),
                                [&entry](const FlowEntry& existing) {
                                  return existing.priority < entry.priority;
                                });
  entries_.insert(pos, std::move(entry));
}

void FlowTable::replace(std::vector<FlowEntry> entries) {
  entries_ = std::move(entries);
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const FlowEntry& a, const FlowEntry& b) {
                     return a.priority > b.priority;
                   });
}

bool FlowTable::remove(FlowEntryId id) {
  const auto pos = std::find_if(entries_.begin(), entries_.end(),
                                [id](const FlowEntry& e) { return e.id == id; });
  if (pos == entries_.end()) return false;
  entries_.erase(pos);
  return true;
}

const FlowEntry* FlowTable::lookup(const PacketHeader& header) const {
  for (const auto& entry : entries_) {
    if (entry.match.matches(header)) return &entry;
  }
  return nullptr;
}

}  // namespace ofmtl
