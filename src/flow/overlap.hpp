// Match-overlap detection — OpenFlow's OFPFF_CHECK_OVERLAP: refuse to add a
// flow entry when an existing entry at the same priority can match the same
// packet. Needs per-field constraint intersection: two matches overlap iff
// every field's constraint pair admits a common value.
#pragma once

#include "flow/flow_entry.hpp"

namespace ofmtl {

/// True if some value satisfies both constraints on a `bits`-wide field.
[[nodiscard]] bool field_constraints_intersect(const FieldMatch& a,
                                               const FieldMatch& b,
                                               unsigned bits);

/// True if some packet matches both (the OpenFlow overlap condition).
[[nodiscard]] bool matches_overlap(const FlowMatch& a, const FlowMatch& b);

/// First entry in `entries` overlapping `candidate` at equal priority, or
/// nullptr. Linear scan — overlap checking is a control-plane operation.
[[nodiscard]] const FlowEntry* find_overlap(const std::vector<FlowEntry>& entries,
                                            const FlowEntry& candidate);

}  // namespace ofmtl
