// Reference flow table: linear search in priority order. This is the
// correctness oracle every accelerated structure is tested against, and the
// "single table lookup" baseline of OpenFlow v1.0 the paper motivates against.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "flow/flow_entry.hpp"

namespace ofmtl {

class FlowTable {
 public:
  FlowTable() = default;
  explicit FlowTable(std::vector<FlowEntry> entries) { replace(std::move(entries)); }

  /// Insert one entry, keeping priority order (stable for equal priorities:
  /// earlier-inserted entries win, mirroring controller insertion order).
  void insert(FlowEntry entry);

  /// Replace all entries at once.
  void replace(std::vector<FlowEntry> entries);

  /// Remove the entry with the given id; returns whether it existed.
  bool remove(FlowEntryId id);

  /// Highest-priority matching entry, or nullptr on table miss.
  [[nodiscard]] const FlowEntry* lookup(const PacketHeader& header) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<FlowEntry>& entries() const { return entries_; }

 private:
  std::vector<FlowEntry> entries_;  // sorted by descending priority
};

}  // namespace ofmtl
