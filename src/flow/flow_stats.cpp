#include "flow/flow_stats.hpp"

namespace ofmtl {

void FlowStatsTracker::install(FlowEntryId id, TimeoutConfig timeouts,
                               std::uint64_t now) {
  FlowStats stats;
  stats.installed_at = now;
  stats.last_used = now;
  stats_[id] = stats;
  timeouts_[id] = timeouts;
}

void FlowStatsTracker::record(const ExecutionResult& result,
                              std::uint64_t bytes, std::uint64_t now) {
  for (const auto id : result.matched_entries) {
    const auto it = stats_.find(id);
    if (it == stats_.end()) continue;  // untracked (e.g. static) entry
    it->second.packets += 1;
    it->second.bytes += bytes;
    it->second.last_used = now;
  }
}

std::vector<FlowEntryId> FlowStatsTracker::expired(std::uint64_t now) const {
  std::vector<FlowEntryId> result;
  for (const auto& [id, stats] : stats_) {
    const auto config = timeouts_.at(id);
    const bool hard =
        config.hard_timeout != 0 && now >= stats.installed_at + config.hard_timeout;
    const bool idle =
        config.idle_timeout != 0 && now >= stats.last_used + config.idle_timeout;
    if (hard || idle) result.push_back(id);
  }
  return result;
}

}  // namespace ofmtl
