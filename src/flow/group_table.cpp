#include "flow/group_table.hpp"

#include <stdexcept>

namespace ofmtl {

void GroupTable::validate(const Group& group) {
  if (group.buckets.empty()) {
    throw std::invalid_argument("group needs at least one bucket");
  }
  if (group.type == GroupType::kIndirect && group.buckets.size() != 1) {
    throw std::invalid_argument("indirect group holds exactly one bucket");
  }
  for (const auto& bucket : group.buckets) {
    if (group.type == GroupType::kSelect && bucket.weight == 0) {
      throw std::invalid_argument("select bucket weight must be nonzero");
    }
  }
}

void GroupTable::add(Group group) {
  validate(group);
  const auto id = group.id;
  if (!groups_.try_emplace(id, std::move(group)).second) {
    throw std::invalid_argument("duplicate group id");
  }
}

void GroupTable::modify(Group group) {
  validate(group);
  const auto it = groups_.find(group.id);
  if (it == groups_.end()) {
    throw std::invalid_argument("modify of unknown group");
  }
  it->second = std::move(group);
}

bool GroupTable::remove(GroupId id) { return groups_.erase(id) > 0; }

const Group* GroupTable::find(GroupId id) const {
  const auto it = groups_.find(id);
  return it == groups_.end() ? nullptr : &it->second;
}

const GroupBucket& GroupTable::select_bucket(const Group& group,
                                             std::uint64_t hash) {
  std::uint64_t total_weight = 0;
  for (const auto& bucket : group.buckets) total_weight += bucket.weight;
  std::uint64_t point = hash % total_weight;
  for (const auto& bucket : group.buckets) {
    if (point < bucket.weight) return bucket;
    point -= bucket.weight;
  }
  return group.buckets.back();
}

mem::MemoryReport GroupTable::memory_report(const std::string& name) const {
  mem::MemoryReport report;
  std::size_t buckets = 0;
  unsigned widest = 1;
  for (const auto& [id, group] : groups_) {
    buckets += group.buckets.size();
    for (const auto& bucket : group.buckets) {
      unsigned bits = 16;  // weight
      for (const auto& action : bucket.actions) bits += action_bits(action);
      widest = std::max(widest, bits);
    }
  }
  report.add(name + ".groups", groups_.size(), 32 + 8 /*id + type*/);
  report.add(name + ".buckets", buckets, widest);
  return report;
}

}  // namespace ofmtl
