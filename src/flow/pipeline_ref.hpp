// Reference OpenFlow v1.3 multi-table pipeline executor (linear-search
// tables). Implements the Goto-Table / Write-Metadata / action-set semantics
// the accelerated architecture must reproduce exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "flow/flow_table.hpp"
#include "flow/group_table.hpp"

namespace ofmtl {

/// Final fate of a processed packet.
enum class Verdict : std::uint8_t {
  kForwarded,     ///< at least one Output action executed
  kDropped,       ///< empty/cleared action set or explicit drop
  kToController,  ///< table miss — "send to controller" (Section IV.C)
};

[[nodiscard]] std::string to_string(Verdict verdict);

/// Trace of one packet's trip through the pipeline.
struct ExecutionResult {
  Verdict verdict = Verdict::kDropped;
  std::vector<std::uint32_t> output_ports;       ///< from executed Output actions
  std::vector<FlowEntryId> matched_entries;      ///< per visited table
  std::vector<std::uint8_t> visited_tables;
  std::uint64_t final_metadata = 0;
  PacketHeader final_header;                     ///< after Set-Field rewrites

  friend bool operator==(const ExecutionResult&, const ExecutionResult&) = default;

  /// Equivalence that ignores the diagnostic trace (used when comparing the
  /// reference executor with the accelerated pipeline).
  [[nodiscard]] bool same_forwarding(const ExecutionResult& other) const {
    return verdict == other.verdict && output_ports == other.output_ports &&
           matched_entries == other.matched_entries;
  }
};

/// Table-walk engine shared by the reference pipeline and the accelerated
/// decomposition pipeline: both provide per-table lookup and get identical
/// Goto-Table / action-set / metadata semantics (so equivalence tests compare
/// only the lookup structures, not two executor implementations).
class TableLookupSource {
 public:
  virtual ~TableLookupSource() = default;
  [[nodiscard]] virtual std::size_t source_table_count() const = 0;
  [[nodiscard]] virtual const FlowEntry* source_lookup(
      std::size_t table, const PacketHeader& header) const = 0;
  /// Group table for resolving Group actions; nullptr = no groups.
  [[nodiscard]] virtual const GroupTable* source_groups() const {
    return nullptr;
  }
};

[[nodiscard]] ExecutionResult execute_tables(const TableLookupSource& source,
                                             const PacketHeader& header);

/// Multi-table pipeline over reference flow tables.
class ReferencePipeline : public TableLookupSource {
 public:
  ReferencePipeline() = default;
  explicit ReferencePipeline(std::vector<FlowTable> tables)
      : tables_(std::move(tables)) {}

  [[nodiscard]] std::size_t table_count() const { return tables_.size(); }
  [[nodiscard]] FlowTable& table(std::size_t index) { return tables_.at(index); }
  [[nodiscard]] const FlowTable& table(std::size_t index) const {
    return tables_.at(index);
  }
  void add_table(FlowTable table) { tables_.push_back(std::move(table)); }

  /// Process one packet starting at table 0.
  [[nodiscard]] ExecutionResult execute(const PacketHeader& header) const {
    return execute_tables(*this, header);
  }

  [[nodiscard]] std::size_t source_table_count() const override {
    return tables_.size();
  }
  [[nodiscard]] const FlowEntry* source_lookup(
      std::size_t table, const PacketHeader& header) const override {
    return tables_[table].lookup(header);
  }
  [[nodiscard]] const GroupTable* source_groups() const override {
    return groups_;
  }

  /// Attach a group table (not owned) for resolving Group actions.
  void set_group_table(const GroupTable* groups) { groups_ = groups; }

 private:
  std::vector<FlowTable> tables_;
  const GroupTable* groups_ = nullptr;
};

}  // namespace ofmtl
