// Reference OpenFlow v1.3 multi-table pipeline executor (linear-search
// tables). Implements the Goto-Table / Write-Metadata / action-set semantics
// the accelerated architecture must reproduce exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "flow/flow_table.hpp"
#include "flow/group_table.hpp"

namespace ofmtl {

/// Final fate of a processed packet.
enum class Verdict : std::uint8_t {
  kForwarded,     ///< at least one Output action executed
  kDropped,       ///< empty/cleared action set or explicit drop
  kToController,  ///< table miss — "send to controller" (Section IV.C)
};

[[nodiscard]] std::string to_string(Verdict verdict);

/// Trace of one packet's trip through the pipeline.
struct ExecutionResult {
  Verdict verdict = Verdict::kDropped;
  std::vector<std::uint32_t> output_ports;       ///< from executed Output actions
  std::vector<FlowEntryId> matched_entries;      ///< per visited table
  std::vector<std::uint8_t> visited_tables;
  std::uint64_t final_metadata = 0;
  PacketHeader final_header;                     ///< after Set-Field rewrites

  friend bool operator==(const ExecutionResult&, const ExecutionResult&) = default;

  /// Equivalence that ignores the diagnostic trace (used when comparing the
  /// reference executor with the accelerated pipeline).
  [[nodiscard]] bool same_forwarding(const ExecutionResult& other) const {
    return verdict == other.verdict && output_ports == other.output_ports &&
           matched_entries == other.matched_entries;
  }
};

/// Table-walk engine shared by the reference pipeline and the accelerated
/// decomposition pipeline: both provide per-table lookup and get identical
/// Goto-Table / action-set / metadata semantics (so equivalence tests compare
/// only the lookup structures, not two executor implementations).
class TableLookupSource {
 public:
  virtual ~TableLookupSource() = default;
  [[nodiscard]] virtual std::size_t source_table_count() const = 0;
  [[nodiscard]] virtual const FlowEntry* source_lookup(
      std::size_t table, const PacketHeader& header) const = 0;
  /// Batched per-table lookup: out[i] = match for *headers[i]. The default
  /// degenerates to per-packet source_lookup; accelerated sources override
  /// it with an interleaved/prefetching implementation.
  virtual void source_lookup_batch(std::size_t table,
                                   std::span<const PacketHeader* const> headers,
                                   std::span<const FlowEntry*> out) const {
    for (std::size_t i = 0; i < headers.size(); ++i) {
      out[i] = source_lookup(table, *headers[i]);
    }
  }
  /// Group table for resolving Group actions; nullptr = no groups.
  [[nodiscard]] virtual const GroupTable* source_groups() const {
    return nullptr;
  }
};

namespace detail {

/// The per-packet action set accumulated by Write-Actions and executed when
/// the pipeline ends (OpenFlow 5.10). Later writes of the same action type
/// overwrite earlier ones; we keep the simplified rule "one Output, the last
/// one written", plus ordered Set-Field rewrites.
struct ActionSet {
  std::optional<std::uint32_t> output;
  std::optional<GroupId> group;
  std::vector<SetFieldAction> set_fields;
  bool dropped = false;

  void write(const Action& action);
  /// Empties the set but keeps set_fields' capacity (allocation-free reuse).
  void clear() {
    output.reset();
    group.reset();
    set_fields.clear();
    dropped = false;
  }
};

}  // namespace detail

/// One packet's in-flight trip through the tables, decomposed into steps so
/// a batch executor can advance many packets through the same table stage
/// together. Writes into a caller-owned ExecutionResult whose vectors are
/// cleared (capacity kept) on begin — a reused PacketRun + ExecutionResult
/// pair performs no steady-state allocations.
class PacketRun {
 public:
  /// Reset onto a fresh packet; `out` is cleared in place and borrowed until
  /// finish().
  void begin(const PacketHeader& header, ExecutionResult& out);

  /// Still walking tables (not ended, not missed)?
  [[nodiscard]] bool running() const { return state_ == State::kRunning; }
  [[nodiscard]] std::size_t table() const { return table_; }
  /// The header as currently rewritten (what the next table must match on).
  [[nodiscard]] const PacketHeader& current_header() const {
    return out_->final_header;
  }

  /// Record the visit to table() and apply its lookup outcome (`entry` or
  /// nullptr for a miss). Advances to the Goto-Table target or ends the run.
  void apply(const FlowEntry* entry);

  /// Execute the accumulated action set and finalize the verdict. No-op
  /// extras on a missed run (the miss verdict is already recorded).
  void finish(const TableLookupSource& source);

 private:
  enum class State : std::uint8_t { kEnded, kRunning, kMissed };
  detail::ActionSet action_set_;
  ExecutionResult* out_ = nullptr;
  std::size_t table_ = 0;
  State state_ = State::kEnded;
};

/// Reusable scratch for execute_tables_batch: per-packet runs plus the
/// frontier arrays regrouping packets by table stage.
struct ExecBatchContext {
  std::vector<PacketRun> runs;
  std::vector<const PacketHeader*> headers;
  std::vector<const FlowEntry*> entries;
  std::vector<std::uint32_t> lanes;  // frontier lane -> packet index
};

[[nodiscard]] ExecutionResult execute_tables(const TableLookupSource& source,
                                             const PacketHeader& header);

/// Batched table walk: packets advance table stage by table stage (Goto-Table
/// only moves forward), each stage resolved with one source_lookup_batch call
/// over every packet currently at that table. results[i] is rewritten in
/// place (vectors cleared, capacity kept) and is bitwise-identical to
/// execute_tables(source, headers[i]).
void execute_tables_batch(const TableLookupSource& source,
                          std::span<const PacketHeader> headers,
                          std::span<ExecutionResult> results,
                          ExecBatchContext& ctx);

/// Multi-table pipeline over reference flow tables.
class ReferencePipeline : public TableLookupSource {
 public:
  ReferencePipeline() = default;
  explicit ReferencePipeline(std::vector<FlowTable> tables)
      : tables_(std::move(tables)) {}

  [[nodiscard]] std::size_t table_count() const { return tables_.size(); }
  [[nodiscard]] FlowTable& table(std::size_t index) { return tables_.at(index); }
  [[nodiscard]] const FlowTable& table(std::size_t index) const {
    return tables_.at(index);
  }
  void add_table(FlowTable table) { tables_.push_back(std::move(table)); }

  /// Process one packet starting at table 0.
  [[nodiscard]] ExecutionResult execute(const PacketHeader& header) const {
    return execute_tables(*this, header);
  }

  [[nodiscard]] std::size_t source_table_count() const override {
    return tables_.size();
  }
  [[nodiscard]] const FlowEntry* source_lookup(
      std::size_t table, const PacketHeader& header) const override {
    return tables_[table].lookup(header);
  }
  [[nodiscard]] const GroupTable* source_groups() const override {
    return groups_;
  }

  /// Attach a group table (not owned) for resolving Group actions.
  void set_group_table(const GroupTable* groups) { groups_ = groups; }

 private:
  std::vector<FlowTable> tables_;
  const GroupTable* groups_ = nullptr;
};

}  // namespace ofmtl
