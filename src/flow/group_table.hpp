// OpenFlow group table (v1.1+): groups of action buckets referenced from
// flow entries via the Group action. ALL replicates the packet through every
// bucket (flood/multicast), SELECT picks one bucket by a packet hash
// (multipath/ECMP), INDIRECT holds a single shared bucket (next-hop
// indirection).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "flow/action.hpp"
#include "mem/memory_model.hpp"

namespace ofmtl {

using GroupId = std::uint32_t;

enum class GroupType : std::uint8_t { kAll = 0, kSelect = 1, kIndirect = 2 };

struct GroupBucket {
  std::uint16_t weight = 1;  ///< SELECT weighting
  std::vector<Action> actions;
  friend bool operator==(const GroupBucket&, const GroupBucket&) = default;
};

struct Group {
  GroupId id = 0;
  GroupType type = GroupType::kAll;
  std::vector<GroupBucket> buckets;
  friend bool operator==(const Group&, const Group&) = default;
};

class GroupTable {
 public:
  /// Insert a group; throws std::invalid_argument on duplicate id, empty
  /// buckets, or an INDIRECT group with more than one bucket.
  void add(Group group);

  /// Replace an existing group (same validation); throws if absent.
  void modify(Group group);

  /// Remove a group; returns whether it existed.
  bool remove(GroupId id);

  [[nodiscard]] const Group* find(GroupId id) const;
  [[nodiscard]] std::size_t size() const { return groups_.size(); }

  /// SELECT bucket choice for a given packet hash: weighted, deterministic.
  [[nodiscard]] static const GroupBucket& select_bucket(const Group& group,
                                                        std::uint64_t hash);

  [[nodiscard]] mem::MemoryReport memory_report(const std::string& name) const;

 private:
  static void validate(const Group& group);
  std::unordered_map<GroupId, Group> groups_;
};

}  // namespace ofmtl
