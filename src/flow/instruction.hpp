// OpenFlow v1.3 instructions attached to flow entries. The paper's multiple
// table model uses Goto-Table and Write-Actions (Section IV.C); table-miss
// raises "send to controller".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "flow/action.hpp"

namespace ofmtl {

/// Write-Metadata operand: metadata = (metadata & ~mask) | (value & mask).
struct MetadataWrite {
  std::uint64_t value = 0;
  std::uint64_t mask = ~std::uint64_t{0};
  friend bool operator==(const MetadataWrite&, const MetadataWrite&) = default;
};

/// The instruction set of one flow entry (at most one of each kind, per the
/// OpenFlow specification).
struct InstructionSet {
  std::optional<std::uint8_t> goto_table;          ///< Goto-Table
  std::optional<MetadataWrite> write_metadata;     ///< Write-Metadata
  std::vector<Action> write_actions;               ///< Write-Actions (action set)
  std::vector<Action> apply_actions;               ///< Apply-Actions (immediate)
  bool clear_actions = false;                      ///< Clear-Actions

  friend bool operator==(const InstructionSet&, const InstructionSet&) = default;

  [[nodiscard]] std::string to_string() const;

  /// Encoded size in bits for the action-table memory model: presence flags,
  /// 8-bit next-table id, 128-bit metadata write, and the actions themselves.
  [[nodiscard]] unsigned bits() const;
};

/// Convenience constructors for the two instruction patterns of Section IV.C.
[[nodiscard]] InstructionSet goto_table_instruction(std::uint8_t next_table);
[[nodiscard]] InstructionSet output_instruction(std::uint32_t port);
[[nodiscard]] InstructionSet goto_and_write(std::uint8_t next_table,
                                            std::vector<Action> actions);

}  // namespace ofmtl
