#include "flow/action.hpp"

#include <sstream>

namespace ofmtl {

std::string to_string(const Action& action) {
  std::ostringstream out;
  std::visit(
      [&out](const auto& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, OutputAction>) {
          out << "output:" << a.port;
        } else if constexpr (std::is_same_v<T, SetFieldAction>) {
          out << "set_field:" << field_name(a.field) << "=" << a.value.lo;
        } else if constexpr (std::is_same_v<T, PushVlanAction>) {
          out << "push_vlan:" << a.vlan_id;
        } else if constexpr (std::is_same_v<T, PopVlanAction>) {
          out << "pop_vlan";
        } else if constexpr (std::is_same_v<T, GroupAction>) {
          out << "group:" << a.group_id;
        } else {
          out << "drop";
        }
      },
      action);
  return out.str();
}

unsigned action_bits(const Action& action) {
  constexpr unsigned kOpcodeBits = 16;
  return kOpcodeBits + std::visit(
                           [](const auto& a) -> unsigned {
                             using T = std::decay_t<decltype(a)>;
                             if constexpr (std::is_same_v<T, OutputAction>) {
                               return 32;
                             } else if constexpr (std::is_same_v<T, SetFieldAction>) {
                               return 8 + field_bits(a.field);
                             } else if constexpr (std::is_same_v<T, PushVlanAction>) {
                               return 16;
                             } else if constexpr (std::is_same_v<T, GroupAction>) {
                               return 32;
                             } else {
                               return 0;
                             }
                           },
                           action);
}

}  // namespace ofmtl
