// OpenFlow v1.3 actions applied to matched packets.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "net/fields.hpp"
#include "net/types.hpp"

namespace ofmtl {

/// Reserved OpenFlow port numbers used by Output actions.
enum class ReservedPort : std::uint32_t {
  kController = 0xFFFFFFFD,
  kFlood = 0xFFFFFFFB,
  kAll = 0xFFFFFFFC,
  kInPort = 0xFFFFFFF8,
};

/// Forward the packet out of a switch port (possibly reserved).
struct OutputAction {
  std::uint32_t port = 0;
  friend bool operator==(const OutputAction&, const OutputAction&) = default;
};

/// Rewrite one header field.
struct SetFieldAction {
  FieldId field = FieldId::kEthDst;
  U128 value{};
  friend bool operator==(const SetFieldAction&, const SetFieldAction&) = default;
};

/// Push an 802.1Q tag.
struct PushVlanAction {
  std::uint16_t vlan_id = 0;
  friend bool operator==(const PushVlanAction&, const PushVlanAction&) = default;
};

/// Pop the outermost 802.1Q tag.
struct PopVlanAction {
  friend bool operator==(const PopVlanAction&, const PopVlanAction&) = default;
};

/// Explicit drop (empty action set also drops; this makes intent visible).
struct DropAction {
  friend bool operator==(const DropAction&, const DropAction&) = default;
};

/// Hand the packet to a group-table group (flood/multipath/indirection).
struct GroupAction {
  std::uint32_t group_id = 0;
  friend bool operator==(const GroupAction&, const GroupAction&) = default;
};

using Action = std::variant<OutputAction, SetFieldAction, PushVlanAction,
                            PopVlanAction, DropAction, GroupAction>;

[[nodiscard]] std::string to_string(const Action& action);

/// Approximate encoded size of one action in bits, used by the action-table
/// memory model: 16-bit opcode plus the operand width.
[[nodiscard]] unsigned action_bits(const Action& action);

}  // namespace ofmtl
