// Text serialization for filter sets. Two formats:
//  * the native "ofmtl" line format (any subset of fields), used by the
//    update-engine's algorithm/action files and for persisting generated sets;
//  * the ClassBench 5-tuple format ("@srcpfx dstpfx sport : sport dport :
//    dport proto/mask") used by the ACL baselines.
#pragma once

#include <iosfwd>
#include <string>

#include "flow/flow_entry.hpp"

namespace ofmtl {

/// Write a filter set in the native line format:
///   # name: <name>
///   # fields: <field name>;<field name>...
///   <priority> <field spec> ... -> <instruction summary>
/// Field spec is one of  *, =HEX, HEX/LEN, [LO-HI].
void write_filterset(std::ostream& out, const FilterSet& set);
[[nodiscard]] std::string filterset_to_string(const FilterSet& set);

/// Parse the native line format (inverse of write_filterset). Instruction
/// summaries are restored for the output/goto patterns the writer emits.
[[nodiscard]] FilterSet parse_filterset(std::istream& in);
[[nodiscard]] FilterSet parse_filterset_string(const std::string& text);

/// Parse one ClassBench-style 5-tuple line into a FlowMatch (fields
/// kIpv4Src, kIpv4Dst, kSrcPort, kDstPort, kIpProto).
[[nodiscard]] FlowMatch parse_classbench_rule(const std::string& line);

/// Write one FlowMatch as a ClassBench 5-tuple line.
[[nodiscard]] std::string to_classbench_rule(const FlowMatch& match);

}  // namespace ofmtl
