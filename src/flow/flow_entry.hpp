// Flow entries: a match over OpenFlow fields + priority + instructions.
// FlowMatch is also the generic "filter"/"rule" representation used by the
// classification algorithms (the paper uses filter and rule interchangeably).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "flow/instruction.hpp"
#include "net/fields.hpp"
#include "net/header.hpp"
#include "net/prefix.hpp"

namespace ofmtl {

/// How one field of a rule constrains packets.
enum class MatchKind : std::uint8_t {
  kAny,     ///< field not matched (wildcard)
  kExact,   ///< all bits compared
  kPrefix,  ///< high `length` bits compared (LPM syntax)
  kRange,   ///< inclusive [lo, hi] (RM syntax)
  kMasked,  ///< arbitrary bitmask (metadata matches)
};

/// Constraint on a single field. A small tagged struct rather than a variant:
/// the hot matching loop reads it linearly.
struct FieldMatch {
  MatchKind kind = MatchKind::kAny;
  U128 value{};             // kExact / kMasked
  U128 mask{};              // kMasked
  Prefix prefix{};          // kPrefix
  ValueRange range{};       // kRange

  [[nodiscard]] static FieldMatch any() { return {}; }
  [[nodiscard]] static FieldMatch exact(U128 value) {
    FieldMatch m;
    m.kind = MatchKind::kExact;
    m.value = value;
    return m;
  }
  [[nodiscard]] static FieldMatch exact(std::uint64_t value) {
    return exact(U128{value});
  }
  [[nodiscard]] static FieldMatch of_prefix(const Prefix& prefix) {
    FieldMatch m;
    m.kind = MatchKind::kPrefix;
    m.prefix = prefix;
    return m;
  }
  [[nodiscard]] static FieldMatch of_range(std::uint64_t lo, std::uint64_t hi) {
    FieldMatch m;
    m.kind = MatchKind::kRange;
    m.range = ValueRange{lo, hi};
    return m;
  }
  [[nodiscard]] static FieldMatch masked(U128 value, U128 mask) {
    FieldMatch m;
    m.kind = MatchKind::kMasked;
    m.value = value & mask;
    m.mask = mask;
    return m;
  }

  [[nodiscard]] bool matches(const U128& key) const {
    switch (kind) {
      case MatchKind::kAny: return true;
      case MatchKind::kExact: return key == value;
      case MatchKind::kPrefix: return prefix.matches(key);
      case MatchKind::kRange: return key.hi == 0 && range.contains(key.lo);
      case MatchKind::kMasked: return (key & mask) == value;
    }
    return false;
  }

  friend bool operator==(const FieldMatch&, const FieldMatch&) = default;
};

/// A match across all OpenFlow fields. Fields default to kAny.
class FlowMatch {
 public:
  FlowMatch() = default;

  void set(FieldId id, FieldMatch match) {
    fields_[static_cast<std::size_t>(id)] = std::move(match);
  }
  [[nodiscard]] const FieldMatch& get(FieldId id) const {
    return fields_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] bool constrains(FieldId id) const {
    return get(id).kind != MatchKind::kAny;
  }

  [[nodiscard]] bool matches(const PacketHeader& header) const {
    for (std::size_t i = 0; i < kFieldCount; ++i) {
      const auto& fm = fields_[i];
      if (fm.kind == MatchKind::kAny) continue;
      if (!fm.matches(header.get(static_cast<FieldId>(i)))) return false;
    }
    return true;
  }

  /// Fields this match constrains, in FieldId order.
  [[nodiscard]] std::vector<FieldId> constrained_fields() const {
    std::vector<FieldId> ids;
    for (std::size_t i = 0; i < kFieldCount; ++i) {
      if (fields_[i].kind != MatchKind::kAny) ids.push_back(static_cast<FieldId>(i));
    }
    return ids;
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FlowMatch&, const FlowMatch&) = default;

 private:
  std::array<FieldMatch, kFieldCount> fields_{};
};

/// Identifier of a flow entry within its filter set (stable across rebuilds).
using FlowEntryId = std::uint32_t;

/// One OpenFlow flow entry.
struct FlowEntry {
  FlowEntryId id = 0;
  std::uint16_t priority = 0;  // higher wins
  FlowMatch match;
  InstructionSet instructions;

  friend bool operator==(const FlowEntry&, const FlowEntry&) = default;
};

/// A filter set: the rules of one application's flow table(s) plus the list
/// of fields the application matches on (e.g. MAC learning: VLAN ID +
/// destination Ethernet; routing: ingress port + destination IPv4).
struct FilterSet {
  std::string name;
  std::vector<FieldId> fields;
  std::vector<FlowEntry> entries;

  [[nodiscard]] std::size_t size() const { return entries.size(); }
};

}  // namespace ofmtl
