#include "flow/instruction.hpp"

#include <sstream>

namespace ofmtl {

std::string InstructionSet::to_string() const {
  std::ostringstream out;
  bool first = true;
  const auto sep = [&] {
    if (!first) out << "; ";
    first = false;
  };
  if (goto_table) {
    sep();
    out << "goto-table:" << static_cast<unsigned>(*goto_table);
  }
  if (write_metadata) {
    sep();
    out << "write-metadata:" << write_metadata->value << "/" << write_metadata->mask;
  }
  if (clear_actions) {
    sep();
    out << "clear-actions";
  }
  if (!write_actions.empty()) {
    sep();
    out << "write-actions:{";
    for (std::size_t i = 0; i < write_actions.size(); ++i) {
      if (i != 0) out << ",";
      out << ofmtl::to_string(write_actions[i]);
    }
    out << "}";
  }
  if (!apply_actions.empty()) {
    sep();
    out << "apply-actions:{";
    for (std::size_t i = 0; i < apply_actions.size(); ++i) {
      if (i != 0) out << ",";
      out << ofmtl::to_string(apply_actions[i]);
    }
    out << "}";
  }
  if (first) out << "(empty)";
  return out.str();
}

unsigned InstructionSet::bits() const {
  unsigned bits = 5;  // presence flags, one per instruction kind
  if (goto_table) bits += 8;
  if (write_metadata) bits += 128;
  for (const auto& a : write_actions) bits += action_bits(a);
  for (const auto& a : apply_actions) bits += action_bits(a);
  return bits;
}

InstructionSet goto_table_instruction(std::uint8_t next_table) {
  InstructionSet set;
  set.goto_table = next_table;
  return set;
}

InstructionSet output_instruction(std::uint32_t port) {
  InstructionSet set;
  set.write_actions.push_back(OutputAction{port});
  return set;
}

InstructionSet goto_and_write(std::uint8_t next_table, std::vector<Action> actions) {
  InstructionSet set;
  set.goto_table = next_table;
  set.write_actions = std::move(actions);
  return set;
}

}  // namespace ofmtl
