#include "flow/pipeline_ref.hpp"

#include <stdexcept>

#include "obs/tracer.hpp"

namespace ofmtl {

std::string to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kForwarded: return "forwarded";
    case Verdict::kDropped: return "dropped";
    case Verdict::kToController: return "to-controller";
  }
  throw std::logic_error("unknown Verdict");
}

namespace detail {

void ActionSet::write(const Action& action) {
  if (std::holds_alternative<OutputAction>(action)) {
    output = std::get<OutputAction>(action).port;
  } else if (std::holds_alternative<GroupAction>(action)) {
    group = std::get<GroupAction>(action).group_id;
  } else if (std::holds_alternative<SetFieldAction>(action)) {
    set_fields.push_back(std::get<SetFieldAction>(action));
  } else if (std::holds_alternative<DropAction>(action)) {
    dropped = true;
  }
  // Push/Pop VLAN only affect the byte codec, not the match-field view the
  // simulator tracks beyond vlan id removal; treated as Set-Field by users.
}

}  // namespace detail

namespace {

/// Deterministic per-packet hash for SELECT bucket choice (the ECMP flow
/// hash: addresses + ports + protocol).
[[nodiscard]] std::uint64_t packet_hash(const PacketHeader& header) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 0x100000001B3ULL;
  };
  mix(header.get64(FieldId::kEthSrc));
  mix(header.get64(FieldId::kEthDst));
  mix(header.get64(FieldId::kIpv4Src));
  mix(header.get64(FieldId::kIpv4Dst));
  mix(header.get(FieldId::kIpv6Src).lo);
  mix(header.get(FieldId::kIpv6Dst).lo);
  mix(header.get64(FieldId::kSrcPort));
  mix(header.get64(FieldId::kDstPort));
  mix(header.get64(FieldId::kIpProto));
  return h;
}

/// Collect the Output ports of one bucket into the result.
void execute_bucket(const GroupBucket& bucket, ExecutionResult& result) {
  for (const auto& action : bucket.actions) {
    if (const auto* out = std::get_if<OutputAction>(&action)) {
      result.output_ports.push_back(out->port);
    }
  }
}

}  // namespace

void PacketRun::begin(const PacketHeader& header, ExecutionResult& out) {
  out.verdict = Verdict::kDropped;
  out.output_ports.clear();
  out.matched_entries.clear();
  out.visited_tables.clear();
  out.final_metadata = 0;
  out.final_header = header;
  action_set_.clear();
  out_ = &out;
  table_ = 0;
  state_ = State::kRunning;
}

void PacketRun::apply(const FlowEntry* entry) {
  ExecutionResult& result = *out_;
  result.visited_tables.push_back(static_cast<std::uint8_t>(table_));
  if (entry == nullptr) {
    // Table miss: the paper's architecture sends the packet to the
    // controller (Section IV.C). The action set is NOT executed.
    result.verdict = Verdict::kToController;
    state_ = State::kMissed;
    return;
  }
  result.matched_entries.push_back(entry->id);

  const InstructionSet& ins = entry->instructions;
  for (const auto& action : ins.apply_actions) {
    if (std::holds_alternative<SetFieldAction>(action)) {
      const auto& sf = std::get<SetFieldAction>(action);
      result.final_header.set(sf.field, sf.value);
    } else if (std::holds_alternative<OutputAction>(action)) {
      result.output_ports.push_back(std::get<OutputAction>(action).port);
    }
  }
  if (ins.clear_actions) action_set_.clear();
  for (const auto& action : ins.write_actions) action_set_.write(action);
  if (ins.write_metadata) {
    const auto& wm = *ins.write_metadata;
    const std::uint64_t old = result.final_header.metadata();
    result.final_header.set_metadata((old & ~wm.mask) | (wm.value & wm.mask));
  }

  if (!ins.goto_table) {  // pipeline ends; execute the action set
    state_ = State::kEnded;
    return;
  }
  if (*ins.goto_table <= table_) {
    throw std::logic_error("Goto-Table must move forward");
  }
  table_ = *ins.goto_table;
}

void PacketRun::finish(const TableLookupSource& source) {
  if (state_ == State::kMissed) return;  // verdict already kToController
  state_ = State::kEnded;
  ExecutionResult& result = *out_;
  result.final_metadata = result.final_header.metadata();

  // Execute the accumulated action set. A Group action takes precedence
  // over Output (OpenFlow 5.10).
  for (const auto& sf : action_set_.set_fields) {
    result.final_header.set(sf.field, sf.value);
  }
  if (!action_set_.dropped && action_set_.group) {
    const GroupTable* groups = source.source_groups();
    const Group* group =
        groups == nullptr ? nullptr : groups->find(*action_set_.group);
    if (group != nullptr) {
      switch (group->type) {
        case GroupType::kAll:
          for (const auto& bucket : group->buckets) {
            execute_bucket(bucket, result);
          }
          break;
        case GroupType::kSelect:
          execute_bucket(
              GroupTable::select_bucket(*group, packet_hash(result.final_header)),
              result);
          break;
        case GroupType::kIndirect:
          execute_bucket(group->buckets.front(), result);
          break;
      }
    }
    // A dangling group reference drops the packet (no ports collected).
  } else if (!action_set_.dropped && action_set_.output) {
    result.output_ports.push_back(*action_set_.output);
  }
  result.verdict =
      result.output_ports.empty() ? Verdict::kDropped : Verdict::kForwarded;
  if (action_set_.dropped) result.verdict = Verdict::kDropped;
}

ExecutionResult execute_tables(const TableLookupSource& source,
                               const PacketHeader& header) {
  ExecutionResult result;
  PacketRun run;
  run.begin(header, result);
  while (run.running() && run.table() < source.source_table_count()) {
    run.apply(source.source_lookup(run.table(), run.current_header()));
  }
  run.finish(source);
  return result;
}

void execute_tables_batch(const TableLookupSource& source,
                          std::span<const PacketHeader> headers,
                          std::span<ExecutionResult> results,
                          ExecBatchContext& ctx) {
  const std::size_t n = headers.size();
  if (results.size() < n) {
    throw std::invalid_argument("execute_tables_batch: results span too small");
  }
  if (ctx.runs.size() < n) ctx.runs.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ctx.runs[i].begin(headers[i], results[i]);
  }
  // Goto-Table only moves forward, so one sweep over the tables visits every
  // packet's whole walk: at each table, batch-look-up exactly the packets
  // currently parked there.
  for (std::size_t t = 0; t < source.source_table_count(); ++t) {
    ctx.lanes.clear();
    ctx.headers.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (ctx.runs[i].running() && ctx.runs[i].table() == t) {
        ctx.lanes.push_back(static_cast<std::uint32_t>(i));
        ctx.headers.push_back(&ctx.runs[i].current_header());
      }
    }
    if (ctx.lanes.empty()) continue;
    OFMTL_OBS_EMIT(obs::TraceEvent::kStageBegin, t, ctx.lanes.size());
    if (ctx.entries.size() < ctx.lanes.size()) {
      ctx.entries.resize(ctx.lanes.size());
    }
    source.source_lookup_batch(
        t, {ctx.headers.data(), ctx.headers.size()},
        {ctx.entries.data(), ctx.lanes.size()});
    // The matched entries' instruction vectors live in separate heap blocks
    // the lookup never touched; pull them in ahead of the apply sweep.
    for (std::size_t lane = 0; lane < ctx.lanes.size(); ++lane) {
      if (const FlowEntry* entry = ctx.entries[lane]) {
        __builtin_prefetch(entry->instructions.apply_actions.data());
        __builtin_prefetch(entry->instructions.write_actions.data());
      }
    }
    for (std::size_t lane = 0; lane < ctx.lanes.size(); ++lane) {
      ctx.runs[ctx.lanes[lane]].apply(ctx.entries[lane]);
    }
    OFMTL_OBS_EMIT(obs::TraceEvent::kStageEnd, t, ctx.lanes.size());
  }
  for (std::size_t i = 0; i < n; ++i) ctx.runs[i].finish(source);
}

}  // namespace ofmtl
