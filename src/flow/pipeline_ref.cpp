#include "flow/pipeline_ref.hpp"

#include <stdexcept>

namespace ofmtl {

std::string to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kForwarded: return "forwarded";
    case Verdict::kDropped: return "dropped";
    case Verdict::kToController: return "to-controller";
  }
  throw std::logic_error("unknown Verdict");
}

namespace {

/// The per-packet action set accumulated by Write-Actions and executed when
/// the pipeline ends (OpenFlow 5.10). Later writes of the same action type
/// overwrite earlier ones; we keep the simplified rule "one Output, the last
/// one written", plus ordered Set-Field rewrites.
struct ActionSet {
  std::optional<std::uint32_t> output;
  std::optional<GroupId> group;
  std::vector<SetFieldAction> set_fields;
  bool dropped = false;

  void write(const Action& action) {
    if (std::holds_alternative<OutputAction>(action)) {
      output = std::get<OutputAction>(action).port;
    } else if (std::holds_alternative<GroupAction>(action)) {
      group = std::get<GroupAction>(action).group_id;
    } else if (std::holds_alternative<SetFieldAction>(action)) {
      set_fields.push_back(std::get<SetFieldAction>(action));
    } else if (std::holds_alternative<DropAction>(action)) {
      dropped = true;
    }
    // Push/Pop VLAN only affect the byte codec, not the match-field view the
    // simulator tracks beyond vlan id removal; treated as Set-Field by users.
  }
  void clear() { *this = {}; }
};

/// Deterministic per-packet hash for SELECT bucket choice (the ECMP flow
/// hash: addresses + ports + protocol).
[[nodiscard]] std::uint64_t packet_hash(const PacketHeader& header) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 0x100000001B3ULL;
  };
  mix(header.get64(FieldId::kEthSrc));
  mix(header.get64(FieldId::kEthDst));
  mix(header.get64(FieldId::kIpv4Src));
  mix(header.get64(FieldId::kIpv4Dst));
  mix(header.get(FieldId::kIpv6Src).lo);
  mix(header.get(FieldId::kIpv6Dst).lo);
  mix(header.get64(FieldId::kSrcPort));
  mix(header.get64(FieldId::kDstPort));
  mix(header.get64(FieldId::kIpProto));
  return h;
}

/// Collect the Output ports of one bucket into the result.
void execute_bucket(const GroupBucket& bucket, ExecutionResult& result) {
  for (const auto& action : bucket.actions) {
    if (const auto* out = std::get_if<OutputAction>(&action)) {
      result.output_ports.push_back(out->port);
    }
  }
}

}  // namespace

ExecutionResult execute_tables(const TableLookupSource& source,
                               const PacketHeader& header) {
  ExecutionResult result;
  result.final_header = header;
  ActionSet action_set;

  std::size_t table_index = 0;
  while (table_index < source.source_table_count()) {
    result.visited_tables.push_back(static_cast<std::uint8_t>(table_index));
    const FlowEntry* entry = source.source_lookup(table_index, result.final_header);
    if (entry == nullptr) {
      // Table miss: the paper's architecture sends the packet to the
      // controller (Section IV.C).
      result.verdict = Verdict::kToController;
      return result;
    }
    result.matched_entries.push_back(entry->id);

    const InstructionSet& ins = entry->instructions;
    for (const auto& action : ins.apply_actions) {
      if (std::holds_alternative<SetFieldAction>(action)) {
        const auto& sf = std::get<SetFieldAction>(action);
        result.final_header.set(sf.field, sf.value);
      } else if (std::holds_alternative<OutputAction>(action)) {
        result.output_ports.push_back(std::get<OutputAction>(action).port);
      }
    }
    if (ins.clear_actions) action_set.clear();
    for (const auto& action : ins.write_actions) action_set.write(action);
    if (ins.write_metadata) {
      const auto& wm = *ins.write_metadata;
      const std::uint64_t old = result.final_header.metadata();
      result.final_header.set_metadata((old & ~wm.mask) | (wm.value & wm.mask));
    }

    if (!ins.goto_table) break;  // pipeline ends; execute the action set
    if (*ins.goto_table <= table_index) {
      throw std::logic_error("Goto-Table must move forward");
    }
    table_index = *ins.goto_table;
  }

  result.final_metadata = result.final_header.metadata();

  // Execute the accumulated action set. A Group action takes precedence
  // over Output (OpenFlow 5.10).
  for (const auto& sf : action_set.set_fields) {
    result.final_header.set(sf.field, sf.value);
  }
  if (!action_set.dropped && action_set.group) {
    const GroupTable* groups = source.source_groups();
    const Group* group =
        groups == nullptr ? nullptr : groups->find(*action_set.group);
    if (group != nullptr) {
      switch (group->type) {
        case GroupType::kAll:
          for (const auto& bucket : group->buckets) {
            execute_bucket(bucket, result);
          }
          break;
        case GroupType::kSelect:
          execute_bucket(
              GroupTable::select_bucket(*group, packet_hash(result.final_header)),
              result);
          break;
        case GroupType::kIndirect:
          execute_bucket(group->buckets.front(), result);
          break;
      }
    }
    // A dangling group reference drops the packet (no ports collected).
  } else if (!action_set.dropped && action_set.output) {
    result.output_ports.push_back(*action_set.output);
  }
  result.verdict =
      result.output_ports.empty() ? Verdict::kDropped : Verdict::kForwarded;
  if (action_set.dropped) result.verdict = Verdict::kDropped;
  return result;
}

}  // namespace ofmtl
