#include "flow/overlap.hpp"

namespace ofmtl {

namespace {

/// The value interval a prefix covers (prefixes over <= 64-bit fields).
[[nodiscard]] ValueRange prefix_interval(const Prefix& prefix, unsigned bits) {
  const std::uint64_t lo = prefix.value64();
  return {lo, lo | low_mask(bits - prefix.length())};
}

[[nodiscard]] bool intervals_intersect(const ValueRange& a, const ValueRange& b) {
  return a.lo <= b.hi && b.lo <= a.hi;
}

/// Intersection when at least one side is interval-shaped and fields are
/// <= 64 bits. Wide fields (IPv6) are handled prefix/exact-only.
[[nodiscard]] bool narrow_intersect(const FieldMatch& a, const FieldMatch& b,
                                    unsigned bits) {
  const auto interval_of = [bits](const FieldMatch& fm) -> ValueRange {
    switch (fm.kind) {
      case MatchKind::kExact: return {fm.value.lo, fm.value.lo};
      case MatchKind::kPrefix: return prefix_interval(fm.prefix, bits);
      case MatchKind::kRange: return fm.range;
      default: return {0, low_mask(bits)};
    }
  };
  // Masked constraints are not intervals: handle pairs involving masks via
  // the bit test below; everything else via intervals.
  if (a.kind != MatchKind::kMasked && b.kind != MatchKind::kMasked) {
    return intervals_intersect(interval_of(a), interval_of(b));
  }
  // mask/mask: compatible iff agreeing on the shared mask bits.
  if (a.kind == MatchKind::kMasked && b.kind == MatchKind::kMasked) {
    const U128 shared = a.mask & b.mask;
    return (a.value & shared) == (b.value & shared);
  }
  // mask vs exact: the exact value must satisfy the mask.
  const FieldMatch& masked = a.kind == MatchKind::kMasked ? a : b;
  const FieldMatch& other = a.kind == MatchKind::kMasked ? b : a;
  if (other.kind == MatchKind::kExact) {
    return (other.value & masked.mask) == masked.value;
  }
  // mask vs prefix/range: conservative (sound for overlap *checking*:
  // reporting a possible overlap is safe, missing one is not).
  return true;
}

}  // namespace

bool field_constraints_intersect(const FieldMatch& a, const FieldMatch& b,
                                 unsigned bits) {
  if (a.kind == MatchKind::kAny || b.kind == MatchKind::kAny) return true;
  if (bits <= 64) return narrow_intersect(a, b, bits);

  // Wide fields: exact / prefix / masked only.
  const auto as_prefix = [bits](const FieldMatch& fm) -> std::optional<Prefix> {
    if (fm.kind == MatchKind::kPrefix) return fm.prefix;
    if (fm.kind == MatchKind::kExact) return Prefix{fm.value, bits, bits};
    return std::nullopt;
  };
  const auto pa = as_prefix(a);
  const auto pb = as_prefix(b);
  if (pa && pb) return pa->covers(*pb) || pb->covers(*pa);
  if (a.kind == MatchKind::kMasked && b.kind == MatchKind::kMasked) {
    const U128 shared = a.mask & b.mask;
    return (a.value & shared) == (b.value & shared);
  }
  const FieldMatch& masked = a.kind == MatchKind::kMasked ? a : b;
  const auto& prefix = pa ? *pa : *pb;
  // prefix vs mask: check agreement on bits constrained by both.
  const U128 prefix_mask = high_mask128(prefix.length()) >> (128 - bits);
  const U128 shared = prefix_mask & masked.mask;
  return (prefix.value() & shared) == (masked.value & shared);
}

bool matches_overlap(const FlowMatch& a, const FlowMatch& b) {
  for (std::size_t i = 0; i < kFieldCount; ++i) {
    const auto id = static_cast<FieldId>(i);
    if (!field_constraints_intersect(a.get(id), b.get(id), field_bits(id))) {
      return false;
    }
  }
  return true;
}

const FlowEntry* find_overlap(const std::vector<FlowEntry>& entries,
                              const FlowEntry& candidate) {
  for (const auto& entry : entries) {
    if (entry.priority != candidate.priority) continue;
    if (entry.id == candidate.id) continue;
    if (matches_overlap(entry.match, candidate.match)) return &entry;
  }
  return nullptr;
}

}  // namespace ofmtl
