#include "flow/flow_entry.hpp"

#include <sstream>

namespace ofmtl {

std::string FlowMatch::to_string() const {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (std::size_t i = 0; i < kFieldCount; ++i) {
    const auto& fm = fields_[i];
    if (fm.kind == MatchKind::kAny) continue;
    if (!first) out << ", ";
    first = false;
    out << field_name(static_cast<FieldId>(i)) << " ";
    switch (fm.kind) {
      case MatchKind::kExact:
        out << "== " << fm.value.lo;
        break;
      case MatchKind::kPrefix:
        out << "in " << fm.prefix.to_string();
        break;
      case MatchKind::kRange:
        out << "in [" << fm.range.lo << "," << fm.range.hi << "]";
        break;
      case MatchKind::kMasked:
        out << "&" << fm.mask.lo << " == " << fm.value.lo;
        break;
      case MatchKind::kAny:
        break;
    }
  }
  out << "]";
  return out.str();
}

}  // namespace ofmtl
