// Per-flow counters and timeout expiry — the OpenFlow flow-entry statistics
// substrate (packet/byte counters, idle and hard timeouts) driven by
// ExecutionResults, so it works identically over the reference pipeline and
// the accelerated one. Time is a caller-supplied virtual clock (ticks).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "flow/pipeline_ref.hpp"

namespace ofmtl {

struct FlowStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t installed_at = 0;
  std::uint64_t last_used = 0;
};

struct TimeoutConfig {
  std::uint32_t idle_timeout = 0;  ///< 0 = never idle-expires
  std::uint32_t hard_timeout = 0;  ///< 0 = never hard-expires
  friend bool operator==(const TimeoutConfig&, const TimeoutConfig&) = default;
};

class FlowStatsTracker {
 public:
  /// Register an installed entry at virtual time `now`.
  void install(FlowEntryId id, TimeoutConfig timeouts, std::uint64_t now);

  /// Forget an entry (after eviction/deletion).
  void erase(FlowEntryId id) {
    stats_.erase(id);
    timeouts_.erase(id);
  }

  /// Account one processed packet: every matched entry on the execution
  /// path counts the packet and refreshes its idle timer.
  void record(const ExecutionResult& result, std::uint64_t bytes,
              std::uint64_t now);

  [[nodiscard]] const FlowStats* find(FlowEntryId id) const {
    const auto it = stats_.find(id);
    return it == stats_.end() ? nullptr : &it->second;
  }

  /// Entries whose idle or hard timeout has fired by `now` (the controller
  /// removes them from the tables and calls erase()).
  [[nodiscard]] std::vector<FlowEntryId> expired(std::uint64_t now) const;

  [[nodiscard]] std::size_t tracked() const { return stats_.size(); }

 private:
  std::unordered_map<FlowEntryId, FlowStats> stats_;
  std::unordered_map<FlowEntryId, TimeoutConfig> timeouts_;
};

}  // namespace ofmtl
