#include "mem/memory_model.hpp"

#include <iomanip>
#include <ostream>

namespace ofmtl::mem {

void MemoryReport::merge(const MemoryReport& other, const std::string& prefix) {
  for (const auto& component : other.components_) {
    components_.push_back(
        {prefix + component.name, component.words, component.word_bits});
  }
}

std::uint64_t MemoryReport::total_bits() const {
  std::uint64_t total = 0;
  for (const auto& component : components_) total += component.bits();
  return total;
}

std::uint64_t MemoryReport::total_blocks(const BlockRamModel& model) const {
  std::uint64_t total = 0;
  for (const auto& component : components_) {
    total += model.blocks_needed(component.words, component.word_bits);
  }
  return total;
}

void MemoryReport::print(std::ostream& out) const {
  out << std::left << std::setw(44) << "component" << std::right << std::setw(10)
      << "words" << std::setw(8) << "w.bits" << std::setw(14) << "Kbits" << "\n";
  for (const auto& component : components_) {
    out << std::left << std::setw(44) << component.name << std::right
        << std::setw(10) << component.words << std::setw(8) << component.word_bits
        << std::setw(14) << std::fixed << std::setprecision(2)
        << to_kbits(component.bits()) << "\n";
  }
  out << std::left << std::setw(44) << "TOTAL" << std::right << std::setw(10) << ""
      << std::setw(8) << "" << std::setw(14) << std::fixed << std::setprecision(2)
      << total_kbits() << "\n";
}

}  // namespace ofmtl::mem
