// Bit-accurate memory accounting and an FPGA block-RAM packing model.
//
// The paper synthesizes on a Stratix V (5SGXMB6R3F43C4) and reports memory in
// Kbits per structure and per trie level. Those figures are pure functions of
// (a) how many nodes/entries a structure stores and (b) the bit layout of one
// node/entry — which this module models; no gate-level synthesis is needed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/types.hpp"

namespace ofmtl::mem {

/// Kbits as the paper reports them (1 Kbit = 1024 bits).
[[nodiscard]] constexpr double to_kbits(std::uint64_t bits) {
  return static_cast<double>(bits) / 1024.0;
}
[[nodiscard]] constexpr double to_mbits(std::uint64_t bits) {
  return static_cast<double>(bits) / (1024.0 * 1024.0);
}

/// Stratix-V-style embedded memory block (M20K: 20 Kbit per block with a set
/// of width/depth configurations). "Each lookup algorithm is implemented in a
/// separate memory block" (Section V.A), so structures never share blocks.
struct BlockRamModel {
  std::uint64_t block_bits = 20 * 1024;  // M20K
  unsigned max_word_bits = 40;           // widest M20K port config (512 x 40)

  /// Blocks needed for `words` words of `word_bits` each. Words wider than a
  /// single port are split across parallel blocks.
  [[nodiscard]] std::uint64_t blocks_needed(std::uint64_t words,
                                            unsigned word_bits) const {
    if (words == 0 || word_bits == 0) return 0;
    const unsigned lanes = (word_bits + max_word_bits - 1) / max_word_bits;
    const unsigned lane_bits = (word_bits + lanes - 1) / lanes;
    // Depth of one block at this lane width, using power-of-two port depths.
    const std::uint64_t raw_depth = block_bits / lane_bits;
    std::uint64_t depth = 1;
    while (depth * 2 <= raw_depth) depth *= 2;
    const std::uint64_t blocks_per_lane = (words + depth - 1) / depth;
    return blocks_per_lane * lanes;
  }
};

/// One named memory component (a LUT, one trie level, an action table, ...).
struct MemoryComponent {
  std::string name;
  std::uint64_t words = 0;
  unsigned word_bits = 0;

  [[nodiscard]] std::uint64_t bits() const {
    return words * static_cast<std::uint64_t>(word_bits);
  }
};

/// A hierarchical memory report: components grouped under one structure.
class MemoryReport {
 public:
  void add(std::string name, std::uint64_t words, unsigned word_bits) {
    components_.push_back({std::move(name), words, word_bits});
  }
  void merge(const MemoryReport& other, const std::string& prefix);

  [[nodiscard]] const std::vector<MemoryComponent>& components() const {
    return components_;
  }
  [[nodiscard]] std::uint64_t total_bits() const;
  [[nodiscard]] double total_kbits() const { return to_kbits(total_bits()); }
  [[nodiscard]] std::uint64_t total_blocks(const BlockRamModel& model) const;

  void print(std::ostream& out) const;

 private:
  std::vector<MemoryComponent> components_;
};

}  // namespace ofmtl::mem
