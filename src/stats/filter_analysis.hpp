// Filter analysis (Section III): the unique-field-value survey behind the
// paper's design choices and Tables III/IV. Counts unique values per field
// and per 16-bit partition of LPM fields (non-wildcard partition prefixes).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "flow/flow_entry.hpp"

namespace ofmtl::stats {

/// Unique-value survey of one field within a filter set.
struct FieldStats {
  FieldId field;
  std::size_t unique_whole = 0;  ///< unique whole-field constraints
  /// Per 16-bit partition (index 0 = highest bits): unique non-wildcard
  /// partition prefixes — the Table III/IV columns. EM/RM fields have one
  /// entry equal to unique_whole.
  std::vector<std::size_t> unique_per_partition;
  std::size_t wildcard_rules = 0;  ///< rules not constraining the field
};

struct FilterAnalysis {
  std::string name;
  std::size_t rule_count = 0;
  std::vector<FieldStats> fields;

  [[nodiscard]] const FieldStats& of(FieldId id) const;
};

[[nodiscard]] FilterAnalysis analyze(const FilterSet& set);

/// Prefix-length histogram of one LPM field ([0..width] buckets) — used for
/// the update-cost discussion and workload validation.
[[nodiscard]] std::vector<std::size_t> prefix_length_histogram(
    const FilterSet& set, FieldId field);

}  // namespace ofmtl::stats
