// Fixed-width table printing and CSV export used by the benchmark binaries
// to render the paper's tables and figure series.
#pragma once

#include <cstdio>
#include <iosfwd>
#include <string_view>
#include <type_traits>
#include <string>
#include <vector>

namespace ofmtl::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);

  /// Convenience: converts arithmetic cells via to_string.
  template <typename... Cells>
  Table& add(const Cells&... cells) {
    return row({cell_to_string(cells)...});
  }

  void print(std::ostream& out) const;
  [[nodiscard]] std::string to_csv() const;

 private:
  template <typename T>
  [[nodiscard]] static std::string cell_to_string(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string> ||
                  std::is_convertible_v<T, std::string_view>) {
      return std::string(value);
    } else if constexpr (std::is_floating_point_v<T>) {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%.2f", static_cast<double>(value));
      return buffer;
    } else {
      return std::to_string(value);
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ofmtl::stats
