#include "stats/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace ofmtl::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << "\n";
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < headers_.size()) rule += "  ";
  }
  out << rule << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_csv() const {
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << ",";
      out << cells[c];
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace ofmtl::stats
