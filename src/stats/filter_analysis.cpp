#include "stats/filter_analysis.hpp"

#include <set>
#include <stdexcept>

namespace ofmtl::stats {

const FieldStats& FilterAnalysis::of(FieldId id) const {
  for (const auto& stats : fields) {
    if (stats.field == id) return stats;
  }
  throw std::invalid_argument("field not analyzed");
}

FilterAnalysis analyze(const FilterSet& set) {
  FilterAnalysis analysis;
  analysis.name = set.name;
  analysis.rule_count = set.entries.size();

  for (const auto id : set.fields) {
    FieldStats stats;
    stats.field = id;
    const unsigned bits = field_bits(id);
    const unsigned partitions =
        field_method(id) == MatchMethod::kLongestPrefix ? partition_count(bits) : 1;
    std::vector<std::set<std::uint64_t>> unique(partitions);
    std::set<std::string> whole;

    for (const auto& entry : set.entries) {
      const auto& fm = entry.match.get(id);
      if (fm.kind == MatchKind::kAny) {
        ++stats.wildcard_rules;
        continue;
      }
      switch (field_method(id)) {
        case MatchMethod::kExact:
          whole.insert(std::to_string(fm.value.hi) + ":" +
                       std::to_string(fm.value.lo));
          unique[0].insert(fm.value.lo ^ fm.value.hi * 0x9E3779B9ULL);
          break;
        case MatchMethod::kRange: {
          whole.insert(std::to_string(fm.range.lo) + "-" +
                       std::to_string(fm.range.hi));
          unique[0].insert((fm.range.lo << 16) | fm.range.hi);
          break;
        }
        case MatchMethod::kLongestPrefix: {
          Prefix prefix;
          if (fm.kind == MatchKind::kPrefix) {
            prefix = fm.prefix;
          } else if (fm.kind == MatchKind::kExact) {
            prefix = Prefix{fm.value, bits, bits};
          } else {
            throw std::invalid_argument("unsupported match kind on LPM field");
          }
          whole.insert(prefix.to_string());
          for (unsigned p = 0; p < partitions; ++p) {
            const unsigned plen = prefix.partition16_length(p);
            if (plen == 0) continue;  // wildcard partition: no stored value
            const std::uint64_t pvalue = prefix.partition16(p);
            unique[p].insert((std::uint64_t{plen} << 16) | pvalue);
          }
          break;
        }
      }
    }
    stats.unique_whole = whole.size();
    for (const auto& values : unique) {
      stats.unique_per_partition.push_back(values.size());
    }
    analysis.fields.push_back(std::move(stats));
  }
  return analysis;
}

std::vector<std::size_t> prefix_length_histogram(const FilterSet& set,
                                                 FieldId field) {
  const unsigned bits = field_bits(field);
  std::vector<std::size_t> histogram(bits + 1, 0);
  for (const auto& entry : set.entries) {
    const auto& fm = entry.match.get(field);
    if (fm.kind == MatchKind::kPrefix) {
      ++histogram[fm.prefix.length()];
    } else if (fm.kind == MatchKind::kExact) {
      ++histogram[bits];
    }
  }
  return histogram;
}

}  // namespace ofmtl::stats
