#include "ofp/agent.hpp"

#include <stdexcept>

namespace ofmtl::ofp {

SwitchAgent::SwitchAgent(std::vector<std::vector<FieldId>> table_fields,
                         FieldSearchConfig config)
    : model_(std::move(table_fields), std::move(config)) {}

std::vector<std::vector<std::uint8_t>> SwitchAgent::handle_control(
    const std::vector<std::uint8_t>& bytes, std::uint64_t now) {
  std::vector<std::vector<std::uint8_t>> responses;
  Envelope envelope;
  if (const auto status = try_decode(bytes, envelope);
      status != DecodeStatus::kOk) {
    responses.push_back(encode_error(peek_xid(bytes), ErrorType::kBadRequest,
                                     error_code_for(status), bytes));
    return responses;
  }

  if (std::holds_alternative<Hello>(envelope.message)) {
    responses.push_back(encode({envelope.xid, Hello{}}));
    return responses;
  }
  if (const auto* echo = std::get_if<EchoRequest>(&envelope.message)) {
    responses.push_back(encode({envelope.xid, EchoReply{echo->payload}}));
    return responses;
  }
  if (const auto* role = std::get_if<RoleRequestMsg>(&envelope.message)) {
    if (role->role != Role::kNoChange) {
      if ((role->role == Role::kMaster || role->role == Role::kSlave) &&
          generation_seen_ &&
          static_cast<std::int64_t>(role->generation_id - max_generation_) <
              0) {
        // Stale generation: a fenced ex-master must not reclaim the channel.
        responses.push_back(encode_error(envelope.xid,
                                         ErrorType::kRoleRequestFailed,
                                         ErrorCode::kStale, bytes));
        return responses;
      }
      if (role->role == Role::kMaster || role->role == Role::kSlave) {
        generation_seen_ = true;
        max_generation_ = role->generation_id;
      }
      role_ = role->role;
    }
    responses.push_back(
        encode({envelope.xid, RoleReplyMsg{role_, max_generation_}}));
    return responses;
  }
  if (const auto* mod = std::get_if<FlowModMsg>(&envelope.message)) {
    if (role_ == Role::kSlave) {
      // A slave observes; it does not write.
      responses.push_back(encode_error(envelope.xid, ErrorType::kFlowModFailed,
                                       ErrorCode::kIsSlave, bytes));
      return responses;
    }
    FlowMod flow_mod;
    flow_mod.command = mod->command;
    flow_mod.table = mod->table_id;
    flow_mod.entry = mod->entry;
    flow_mod.timeouts = mod->timeouts;
    const bool notify_on_delete = mod->command == FlowModCommand::kDelete &&
                                  notify_removed_.contains(mod->entry.id);
    FlowRemovedMsg removed;
    if (notify_on_delete) {
      // Stats snapshot must precede the apply, which erases them.
      removed.entry_id = mod->entry.id;
      removed.table_id = mod->table_id;
      removed.reason = FlowRemovedReason::kDelete;
      if (const auto* stats = model_.stats().find(mod->entry.id)) {
        removed.packets = stats->packets;
        removed.bytes = stats->bytes;
      }
    }
    try {
      model_.apply(flow_mod, now);
    } catch (const std::invalid_argument&) {
      // Duplicate add, unknown table, missing delete id, ...: the mod is the
      // peer's fault, not a switch fault — answer, don't unwind.
      responses.push_back(encode_error(envelope.xid, ErrorType::kFlowModFailed,
                                       ErrorCode::kBadValue, bytes));
      return responses;
    }
    if (notify_on_delete) {
      responses.push_back(encode({next_xid(), removed}));
      notify_removed_.erase(mod->entry.id);
    }
    if (mod->command != FlowModCommand::kDelete && mod->send_flow_removed) {
      notify_removed_[mod->entry.id] = mod->table_id;
    }
    return responses;
  }
  if (const auto* out = std::get_if<PacketOut>(&envelope.message)) {
    // The agent's data plane executes the given actions directly; the only
    // observable here is whether the frame parses.
    PacketHeader header;
    if (!parse_packet_header(out->frame, out->in_port, header)) {
      responses.push_back(encode_error(envelope.xid, ErrorType::kBadRequest,
                                       ErrorCode::kBadValue, bytes));
    }
    return responses;
  }
  // Switch->controller types (PACKET_IN, FLOW_REMOVED, ERROR, ECHO_REPLY)
  // arriving on the inbound path are a protocol violation, not a crash.
  responses.push_back(encode_error(envelope.xid, ErrorType::kBadRequest,
                                   ErrorCode::kBadType, bytes));
  return responses;
}

SwitchAgent::DataResult SwitchAgent::handle_frame(
    const std::vector<std::uint8_t>& frame, std::uint32_t in_port,
    std::uint64_t now) {
  const auto parsed = parse_packet(frame, in_port);
  DataResult result{model_.process(parsed.header, frame.size(), now), {}};
  if (result.execution.verdict == Verdict::kToController) {
    PacketIn packet_in;
    packet_in.table_id = result.execution.visited_tables.empty()
                             ? 0
                             : result.execution.visited_tables.back();
    packet_in.reason = PacketInReason::kNoMatch;
    packet_in.in_port = in_port;
    packet_in.frame = frame;
    result.packet_in = encode({next_xid(), packet_in});
  }
  return result;
}

std::vector<std::vector<std::uint8_t>> SwitchAgent::sweep(std::uint64_t now) {
  std::vector<std::vector<std::uint8_t>> notifications;
  // Stats snapshots must be taken before the sweep erases them.
  const auto expired = model_.stats().expired(now);
  std::vector<std::pair<FlowRemovedMsg, bool>> pending;
  for (const auto id : expired) {
    const auto notify = notify_removed_.find(id);
    FlowRemovedMsg removed;
    removed.entry_id = id;
    removed.reason = FlowRemovedReason::kIdleTimeout;
    if (const auto* stats = model_.stats().find(id)) {
      removed.packets = stats->packets;
      removed.bytes = stats->bytes;
    }
    if (notify != notify_removed_.end()) {
      removed.table_id = notify->second;
      pending.emplace_back(removed, true);
      notify_removed_.erase(notify);
    }
  }
  (void)model_.sweep_timeouts(now);
  for (const auto& [removed, notify] : pending) {
    if (notify) notifications.push_back(encode({next_xid(), removed}));
  }
  return notifications;
}

}  // namespace ofmtl::ofp
