// OpenFlow-style control-channel messages with a binary wire codec — the
// controller/switch protocol substrate the update evaluation (Section V.B)
// assumes. The format follows OpenFlow v1.3's message taxonomy (HELLO, ECHO,
// FLOW_MOD, PACKET_IN, PACKET_OUT, FLOW_REMOVED) with a simplified TLV body
// encoding; it is this library's own concrete format, not the IANA one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/switch_model.hpp"
#include "flow/flow_entry.hpp"

namespace ofmtl::ofp {

inline constexpr std::uint8_t kProtocolVersion = 4;  // OpenFlow 1.3 numbering

enum class MsgType : std::uint8_t {
  kHello = 0,
  kEchoRequest = 2,
  kEchoReply = 3,
  kPacketIn = 10,
  kFlowRemoved = 11,
  kPacketOut = 13,
  kFlowMod = 14,
};

struct Hello {
  friend bool operator==(const Hello&, const Hello&) = default;
};

struct EchoRequest {
  std::vector<std::uint8_t> payload;
  friend bool operator==(const EchoRequest&, const EchoRequest&) = default;
};

struct EchoReply {
  std::vector<std::uint8_t> payload;
  friend bool operator==(const EchoReply&, const EchoReply&) = default;
};

/// Why a packet was punted to the controller.
enum class PacketInReason : std::uint8_t { kNoMatch = 0, kAction = 1 };

struct PacketIn {
  std::uint32_t buffer_id = 0xFFFFFFFF;  // OFP_NO_BUFFER: full frame inline
  std::uint8_t table_id = 0;
  PacketInReason reason = PacketInReason::kNoMatch;
  std::uint32_t in_port = 0;
  std::vector<std::uint8_t> frame;
  friend bool operator==(const PacketIn&, const PacketIn&) = default;
};

struct PacketOut {
  std::uint32_t buffer_id = 0xFFFFFFFF;
  std::uint32_t in_port = 0;
  std::vector<Action> actions;
  std::vector<std::uint8_t> frame;
  friend bool operator==(const PacketOut&, const PacketOut&) = default;
};

enum class FlowRemovedReason : std::uint8_t {
  kIdleTimeout = 0,
  kHardTimeout = 1,
  kDelete = 2,
};

struct FlowRemovedMsg {
  FlowEntryId entry_id = 0;
  std::uint8_t table_id = 0;
  FlowRemovedReason reason = FlowRemovedReason::kIdleTimeout;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  friend bool operator==(const FlowRemovedMsg&, const FlowRemovedMsg&) = default;
};

struct FlowModMsg {
  FlowModCommand command = FlowModCommand::kAdd;
  std::uint8_t table_id = 0;
  FlowEntry entry;
  TimeoutConfig timeouts{};
  bool send_flow_removed = false;  ///< OFPFF_SEND_FLOW_REM
  friend bool operator==(const FlowModMsg&, const FlowModMsg&) = default;
};

using Message = std::variant<Hello, EchoRequest, EchoReply, PacketIn, PacketOut,
                             FlowRemovedMsg, FlowModMsg>;

/// Envelope: version, type, length, transaction id.
struct Envelope {
  std::uint32_t xid = 0;
  Message message;
  friend bool operator==(const Envelope&, const Envelope&) = default;
};

/// Encode one message with its header.
[[nodiscard]] std::vector<std::uint8_t> encode(const Envelope& envelope);

/// Decode one message. Throws std::invalid_argument on malformed input
/// (wrong version, truncated body, unknown type/tag).
[[nodiscard]] Envelope decode(const std::vector<std::uint8_t>& bytes);

[[nodiscard]] std::string to_string(MsgType type);

}  // namespace ofmtl::ofp
