// OpenFlow-style control-channel messages with a binary wire codec — the
// controller/switch protocol substrate the update evaluation (Section V.B)
// assumes. The format follows OpenFlow v1.3's message taxonomy (HELLO, ECHO,
// FLOW_MOD, PACKET_IN, PACKET_OUT, FLOW_REMOVED) with a simplified TLV body
// encoding; it is this library's own concrete format, not the IANA one.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/switch_model.hpp"
#include "flow/flow_entry.hpp"

namespace ofmtl::ofp {

inline constexpr std::uint8_t kProtocolVersion = 4;  // OpenFlow 1.3 numbering

/// Fixed message header: version u8, type u8, length u16, xid u32. The
/// length field covers the header itself, so no valid frame is shorter.
inline constexpr std::size_t kHeaderSize = 8;

enum class MsgType : std::uint8_t {
  kHello = 0,
  kError = 1,
  kEchoRequest = 2,
  kEchoReply = 3,
  kPacketIn = 10,
  kFlowRemoved = 11,
  kPacketOut = 13,
  kFlowMod = 14,
  kRoleRequest = 24,  // OpenFlow 1.3 OFPT_ROLE_REQUEST numbering
  kRoleReply = 25,
  // Resync is this library's own extension (no OF1.3 analogue): after a
  // controller failover the surviving master reconciles the switch's flow
  // table against its intent via a cookie digest instead of replaying blind.
  kResyncRequest = 26,
  kResyncReply = 27,
};

struct Hello {
  friend bool operator==(const Hello&, const Hello&) = default;
};

/// OFPT_ERROR taxonomy (simplified): what went wrong with a peer's message.
enum class ErrorType : std::uint16_t {
  kHelloFailed = 0,         ///< handshake violation (e.g. traffic before HELLO)
  kBadRequest = 1,          ///< malformed frame / unknown or unexpected type
  kBadMatch = 4,            ///< flow-mod match rejected
  kFlowModFailed = 5,       ///< flow-mod could not be applied (dup add, ...)
  kRoleRequestFailed = 11,  ///< role change rejected (stale generation, ...)
};

enum class ErrorCode : std::uint16_t {
  kNone = 0,
  kBadVersion = 1,
  kBadType = 2,
  kBadLength = 3,
  kTruncated = 4,
  kBadValue = 5,
  kUnknownEntry = 6,
  kDuplicateEntry = 7,
  kBufferOverflow = 8,  ///< peer's write buffer cap exceeded (backpressure)
  kTimeout = 9,         ///< liveness deadline missed
  kStale = 10,          ///< generation_id older than the fenced maximum
  kIsSlave = 11,        ///< state-mutating request from a slave session
  kOverload = 12,       ///< shed under pressure; data carries a backoff hint
};

/// Error reply carrying the failure class plus (a prefix of) the offending
/// message so the controller can correlate it beyond the echoed xid.
struct ErrorMsg {
  ErrorType type = ErrorType::kBadRequest;
  ErrorCode code = ErrorCode::kNone;
  std::vector<std::uint8_t> data;
  friend bool operator==(const ErrorMsg&, const ErrorMsg&) = default;
};

struct EchoRequest {
  std::vector<std::uint8_t> payload;
  friend bool operator==(const EchoRequest&, const EchoRequest&) = default;
};

struct EchoReply {
  std::vector<std::uint8_t> payload;
  friend bool operator==(const EchoReply&, const EchoReply&) = default;
};

/// Why a packet was punted to the controller.
enum class PacketInReason : std::uint8_t { kNoMatch = 0, kAction = 1 };

struct PacketIn {
  std::uint32_t buffer_id = 0xFFFFFFFF;  // OFP_NO_BUFFER: full frame inline
  std::uint8_t table_id = 0;
  PacketInReason reason = PacketInReason::kNoMatch;
  std::uint32_t in_port = 0;
  std::vector<std::uint8_t> frame;
  friend bool operator==(const PacketIn&, const PacketIn&) = default;
};

struct PacketOut {
  std::uint32_t buffer_id = 0xFFFFFFFF;
  std::uint32_t in_port = 0;
  std::vector<Action> actions;
  std::vector<std::uint8_t> frame;
  friend bool operator==(const PacketOut&, const PacketOut&) = default;
};

enum class FlowRemovedReason : std::uint8_t {
  kIdleTimeout = 0,
  kHardTimeout = 1,
  kDelete = 2,
};

struct FlowRemovedMsg {
  FlowEntryId entry_id = 0;
  std::uint8_t table_id = 0;
  FlowRemovedReason reason = FlowRemovedReason::kIdleTimeout;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  friend bool operator==(const FlowRemovedMsg&, const FlowRemovedMsg&) = default;
};

struct FlowModMsg {
  FlowModCommand command = FlowModCommand::kAdd;
  std::uint8_t table_id = 0;
  /// Controller-chosen stamp journaled with the entry; resync compares
  /// cookies, not bodies, so a re-added entry with new intent (same id,
  /// different cookie) is detected as stale and reconciled.
  std::uint64_t cookie = 0;
  FlowEntry entry;
  TimeoutConfig timeouts{};
  bool send_flow_removed = false;  ///< OFPFF_SEND_FLOW_REM
  friend bool operator==(const FlowModMsg&, const FlowModMsg&) = default;
};

/// OFP controller role (OFPCR_ROLE_*). kNoChange queries without mutating.
enum class Role : std::uint8_t {
  kNoChange = 0,
  kEqual = 1,
  kMaster = 2,
  kSlave = 3,
};

/// OFPT_ROLE_REQUEST: claim a role. Master/slave claims carry a
/// generation_id; the switch fences claims whose generation is older
/// (circular comparison) than the largest it has seen.
struct RoleRequestMsg {
  Role role = Role::kNoChange;
  std::uint64_t generation_id = 0;
  friend bool operator==(const RoleRequestMsg&, const RoleRequestMsg&) = default;
};

/// OFPT_ROLE_REPLY: the session's role after the request — also sent
/// unsolicited (xid 0) to notify a slave it was promoted to master.
struct RoleReplyMsg {
  Role role = Role::kEqual;
  std::uint64_t generation_id = 0;
  friend bool operator==(const RoleReplyMsg&, const RoleReplyMsg&) = default;
};

/// One journaled flow-table entry in a resync digest.
struct ResyncEntry {
  std::uint8_t table_id = 0;
  FlowEntryId entry_id = 0;
  std::uint64_t cookie = 0;
  friend bool operator==(const ResyncEntry&, const ResyncEntry&) = default;
};

/// Controller -> switch: (a chunk of) the controller's intended table as
/// (table, id, cookie) triples. `done` marks the final chunk; the switch
/// accumulates chunks and runs the diff only when the digest is complete,
/// so arbitrarily large tables fit under the 64 KiB frame cap.
struct ResyncRequestMsg {
  bool done = true;
  std::vector<ResyncEntry> entries;
  friend bool operator==(const ResyncRequestMsg&, const ResyncRequestMsg&) =
      default;
};

/// Switch -> controller resync verdict: `missing` lists intended entries the
/// switch does not hold (absent, or held with a stale cookie and GC'd) which
/// the controller must re-send; `deleted` counts journal entries the switch
/// garbage-collected because the digest no longer claims them. Chunked like
/// the request, `done` on the last chunk.
struct ResyncReplyMsg {
  bool done = true;
  std::uint32_t deleted = 0;
  std::vector<ResyncEntry> missing;
  friend bool operator==(const ResyncReplyMsg&, const ResyncReplyMsg&) = default;
};

using Message =
    std::variant<Hello, ErrorMsg, EchoRequest, EchoReply, PacketIn, PacketOut,
                 FlowRemovedMsg, FlowModMsg, RoleRequestMsg, RoleReplyMsg,
                 ResyncRequestMsg, ResyncReplyMsg>;

/// Envelope: version, type, length, transaction id.
struct Envelope {
  std::uint32_t xid = 0;
  Message message;
  friend bool operator==(const Envelope&, const Envelope&) = default;
};

/// Encode one message with its header.
[[nodiscard]] std::vector<std::uint8_t> encode(const Envelope& envelope);

/// Why a frame failed to decode. kOk aside, every value maps onto the
/// ErrorCode a server should echo back (see error_code_for).
enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kBadVersion,     ///< header version != kProtocolVersion
  kBadLength,      ///< header length field disagrees with the frame size
  kTruncated,      ///< body shorter than its own structure claims
  kTrailingBytes,  ///< body longer than its structure consumes
  kBadType,        ///< unknown message type
  kBadValue,       ///< field-level violation (bad tag, bad prefix, ...)
};

/// Decode one message without ever throwing: the server path. On kOk, `out`
/// holds the envelope; on any other status `out` is unspecified. Malformed
/// input of every shape (empty, truncated at any cut point, oversized or
/// undersized length fields, corrupt tags) yields a status, never an
/// exception.
[[nodiscard]] DecodeStatus try_decode(std::span<const std::uint8_t> bytes,
                                      Envelope& out) noexcept;

/// Decode one message. Throws std::invalid_argument on malformed input
/// (wrong version, truncated body, unknown type/tag). Convenience wrapper
/// over try_decode for test/tool code; servers use try_decode directly.
[[nodiscard]] Envelope decode(const std::vector<std::uint8_t>& bytes);

/// The ERROR envelope a server replies with for a given decode failure.
[[nodiscard]] ErrorCode error_code_for(DecodeStatus status);

/// Cap on the offending-frame prefix echoed back inside ERROR replies, so a
/// hostile 64 KiB frame never reflects into a 64 KiB error.
inline constexpr std::size_t kErrorDataCap = 64;

/// Build one encoded ERROR reply echoing (a capped prefix of) the offending
/// bytes. Never throws.
[[nodiscard]] std::vector<std::uint8_t> encode_error(
    std::uint32_t xid, ErrorType type, ErrorCode code,
    std::span<const std::uint8_t> offending = {});

/// Best-effort xid of a raw frame (offset 4..8), 0 when too short — lets
/// ERROR replies to undecodable frames still echo the transaction id.
[[nodiscard]] std::uint32_t peek_xid(std::span<const std::uint8_t> bytes);

/// Total frame length a (possibly partial) frame claims in its header, or
/// std::nullopt while fewer than 4 bytes have arrived. Values below
/// kHeaderSize are protocol violations the caller must reject.
[[nodiscard]] std::optional<std::size_t> peek_frame_length(
    std::span<const std::uint8_t> bytes);

[[nodiscard]] std::string to_string(MsgType type);
[[nodiscard]] std::string to_string(DecodeStatus status);
[[nodiscard]] std::string to_string(Role role);

}  // namespace ofmtl::ofp
