// The switch-side protocol endpoint: terminates the control channel on a
// SwitchModel. Flow-mods mutate the decomposed tables, table misses on the
// data path surface as PACKET_IN, timeout sweeps emit FLOW_REMOVED (when the
// flow asked for it), ECHO keeps the session alive — the complete
// controller/switch loop the paper's update evaluation simulates.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "ofp/messages.hpp"

namespace ofmtl::ofp {

class SwitchAgent {
 public:
  explicit SwitchAgent(std::vector<std::vector<FieldId>> table_fields,
                       FieldSearchConfig config = {});

  /// Handle one control message (wire bytes); returns response messages
  /// (wire bytes). Never throws on peer input: malformed frames, unexpected
  /// message types, flow-mods that fail to apply, and unparseable PACKET_OUT
  /// frames all answer with an OFP ERROR envelope instead — the contract the
  /// served endpoint (src/ofp/server/) relies on.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> handle_control(
      const std::vector<std::uint8_t>& bytes, std::uint64_t now = 0);

  /// Result of pushing one data-plane frame through the switch.
  struct DataResult {
    ExecutionResult execution;
    /// PACKET_IN bytes when the pipeline missed (send to controller).
    std::optional<std::vector<std::uint8_t>> packet_in;
  };

  /// Process a raw frame received on `in_port` at virtual time `now`.
  [[nodiscard]] DataResult handle_frame(const std::vector<std::uint8_t>& frame,
                                        std::uint32_t in_port,
                                        std::uint64_t now = 0);

  /// Expire flows; returns FLOW_REMOVED wire messages for flows that set
  /// send_flow_removed.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> sweep(std::uint64_t now);

  [[nodiscard]] const SwitchModel& model() const { return model_; }
  [[nodiscard]] std::uint32_t next_xid() { return next_xid_++; }
  /// Controller role of the (single) control channel. Starts EQUAL.
  [[nodiscard]] Role role() const { return role_; }

 private:
  SwitchModel model_;
  std::uint32_t next_xid_ = 1;
  // Single-session role state: same generation fencing as the served
  // control plane (src/ofp/server/roles.hpp), degenerate promotion rules.
  Role role_ = Role::kEqual;
  std::uint64_t max_generation_ = 0;
  bool generation_seen_ = false;
  // Flows that requested FLOW_REMOVED notification: id -> table.
  std::unordered_map<FlowEntryId, std::uint8_t> notify_removed_;
};

}  // namespace ofmtl::ofp
