// Scripted fault injection for the OFP control-plane server: the hostile-
// controller toolkit behind the deterministic unit tests and the soak test
// (tools/ofp_soak.cpp). Two layers:
//
//  - FaultySocket: a loopback TCP client whose writes follow a script —
//    short writes, byte-at-a-time delivery, a mid-message cut followed by a
//    hard RST (SO_LINGER{1,0}), stalls (simply not reading) — plus a framed
//    reader built on the server's own FrameAssembler.
//  - SessionScript: a seeded, per-frame fault plan (how to fragment, where
//    to cut, when to reset) so every run of a test or soak with the same
//    seed injects byte-identical faults. ScriptedController glues the two
//    and adds the protocol helpers (handshake, echo barrier) controllers
//    need to make convergence assertions exact.
//
// This is test infrastructure, header-only by design: production targets
// never link any of it in unless a test/tool includes it.
#pragma once

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ofp/messages.hpp"
#include "ofp/server/frame_assembler.hpp"
#include "workload/rng.hpp"

namespace ofmtl::ofp::testing {

/// How one frame gets delivered to the server.
struct FrameFault {
  /// Fragment sizes the frame is written in (cycled); empty = whole frame.
  std::vector<std::size_t> chunks;
  /// When set, deliver only the first `cut` bytes, then hard-RST: the
  /// server sees a partial frame followed by a mid-message disconnect.
  std::optional<std::size_t> cut;
};

/// Severity knob for scripted fault generation.
enum class FaultLevel { kNone, kLight, kHeavy };

/// Deterministic per-frame fault plan: same seed, same faults, same bytes
/// on the wire.
inline FrameFault make_fault(workload::Rng& rng, std::size_t frame_size,
                             FaultLevel level) {
  FrameFault fault;
  if (level == FaultLevel::kNone || frame_size == 0) return fault;
  const double fragment_p = level == FaultLevel::kHeavy ? 0.6 : 0.25;
  const double rst_p = level == FaultLevel::kHeavy ? 0.08 : 0.02;
  if (rng.chance(fragment_p)) {
    if (rng.chance(0.3)) {
      fault.chunks = {1};  // byte-at-a-time
    } else {
      // A handful of uneven fragments, each 1..frame_size bytes.
      const std::size_t pieces = 2 + rng.below(4);
      for (std::size_t i = 0; i < pieces; ++i) {
        fault.chunks.push_back(1 + rng.below(frame_size));
      }
    }
  }
  if (rng.chance(rst_p)) {
    // Cut anywhere inside the frame, header included: cut==0 resets before
    // any byte, cut inside the body leaves a dangling partial frame.
    fault.cut = rng.below(frame_size);
  }
  return fault;
}

/// A loopback TCP controller endpoint with scripted delivery. Non-copyable,
/// movable; closes on destruction.
class FaultySocket {
 public:
  FaultySocket() = default;
  FaultySocket(FaultySocket&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
    assembler_ = std::move(other.assembler_);
  }
  FaultySocket& operator=(FaultySocket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
      assembler_ = std::move(other.assembler_);
    }
    return *this;
  }
  FaultySocket(const FaultySocket&) = delete;
  FaultySocket& operator=(const FaultySocket&) = delete;
  ~FaultySocket() { close(); }

  /// Blocking loopback connect with a receive deadline on the socket.
  [[nodiscard]] static std::optional<FaultySocket> connect(
      std::uint16_t port, int recv_timeout_ms = 5000) {
    FaultySocket sock;
    sock.fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (sock.fd_ < 0) return std::nullopt;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(sock.fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      return std::nullopt;
    }
    timeval tv{recv_timeout_ms / 1000, (recv_timeout_ms % 1000) * 1000};
    (void)::setsockopt(sock.fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    const int one = 1;
    (void)::setsockopt(sock.fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return sock;
  }

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Write every byte (looping over short writes). False on error.
  bool send_all(std::span<const std::uint8_t> bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Deliver one frame under a fault plan. Returns false when the plan (or
  /// the transport) killed the connection — the caller reconnects.
  bool send_frame(std::span<const std::uint8_t> frame, const FrameFault& fault) {
    auto payload = frame;
    const bool rst_after = fault.cut.has_value();
    if (rst_after) payload = payload.first(*fault.cut);
    if (fault.chunks.empty()) {
      if (!payload.empty() && !send_all(payload)) return false;
    } else {
      std::size_t off = 0, i = 0;
      while (off < payload.size()) {
        const auto chunk =
            std::min(fault.chunks[i++ % fault.chunks.size()],
                     payload.size() - off);
        if (!send_all(payload.subspan(off, chunk))) return false;
        off += chunk;
      }
    }
    if (rst_after) {
      rst();
      return false;
    }
    return true;
  }

  /// Hard reset: RST instead of FIN, so the server sees a mid-stream abort.
  void rst() {
    if (fd_ < 0) return;
    linger hard{1, 0};
    (void)::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
    close();
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  /// Read one complete OFP frame (blocking up to the socket's receive
  /// timeout per read). nullopt on timeout, EOF, or framing error.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> read_frame() {
    std::vector<std::uint8_t> frame;
    while (true) {
      if (assembler_.next(frame)) return frame;
      if (assembler_.status() != server::FrameAssembler::Status::kOk) {
        return std::nullopt;
      }
      std::uint8_t buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return std::nullopt;
      }
      (void)assembler_.push({buf, static_cast<std::size_t>(n)});
    }
  }

 private:
  int fd_ = -1;
  server::FrameAssembler assembler_;
};

/// Outcome of one scripted controller operation.
struct BarrierResult {
  bool ok = false;             ///< echo reply observed
  std::size_t errors_seen = 0; ///< ERROR frames consumed on the way
};

/// Protocol-aware wrapper: a controller that speaks the handshake and can
/// erect echo barriers, delivering its frames through scripted faults.
class ScriptedController {
 public:
  /// Connect + HELLO exchange. False when the transport or handshake fails.
  [[nodiscard]] bool connect(std::uint16_t port, int recv_timeout_ms = 5000) {
    auto sock = FaultySocket::connect(port, recv_timeout_ms);
    if (!sock.has_value()) return false;
    sock_ = std::move(*sock);
    if (!sock_.send_all(encode({next_xid_++, Hello{}}))) return false;
    // The server's HELLO may arrive before or interleaved with ours;
    // consume frames until we see it.
    for (int i = 0; i < 4; ++i) {
      const auto frame = sock_.read_frame();
      if (!frame.has_value()) return false;
      Envelope envelope;
      if (try_decode(*frame, envelope) == DecodeStatus::kOk &&
          std::holds_alternative<Hello>(envelope.message)) {
        return true;
      }
    }
    return false;
  }

  /// Send one frame under `fault`. False = connection gone, reconnect.
  bool send(std::span<const std::uint8_t> frame, const FrameFault& fault = {}) {
    return sock_.send_frame(frame, fault);
  }

  /// Echo barrier: when this returns ok, every frame sent before it has
  /// been fully processed by the server (the session answers in frame
  /// order). ERROR frames encountered while waiting are counted, any other
  /// interleaved frame is discarded.
  [[nodiscard]] BarrierResult barrier(std::size_t max_frames = 4096) {
    BarrierResult result;
    const std::uint32_t xid = next_xid_++;
    if (!sock_.send_all(encode({xid, EchoRequest{{0xB, 0xA, 0x5}}}))) {
      return result;
    }
    for (std::size_t i = 0; i < max_frames; ++i) {
      const auto frame = sock_.read_frame();
      if (!frame.has_value()) return result;
      Envelope envelope;
      if (try_decode(*frame, envelope) != DecodeStatus::kOk) continue;
      if (std::holds_alternative<ErrorMsg>(envelope.message)) {
        result.errors_seen++;
        continue;
      }
      if (const auto* reply = std::get_if<EchoReply>(&envelope.message);
          reply != nullptr && envelope.xid == xid) {
        result.ok = true;
        return result;
      }
      if (std::get_if<EchoRequest>(&envelope.message) != nullptr) {
        // Server liveness probe while we were "thinking": answer it so a
        // stalled script doesn't get disconnected mid-assertion.
        (void)sock_.send_all(
            encode({envelope.xid,
                    EchoReply{std::get<EchoRequest>(envelope.message).payload}}));
      }
    }
    return result;
  }

  /// Claim a controller role. Returns the ROLE_REPLY on success, nullopt on
  /// transport loss or an ERROR reply (generation fencing). Interleaved
  /// frames are handled like barrier().
  [[nodiscard]] std::optional<RoleReplyMsg> request_role(
      Role role, std::uint64_t generation_id, std::size_t max_frames = 4096) {
    const std::uint32_t xid = next_xid_++;
    if (!sock_.send_all(encode({xid, RoleRequestMsg{role, generation_id}}))) {
      return std::nullopt;
    }
    for (std::size_t i = 0; i < max_frames; ++i) {
      const auto frame = sock_.read_frame();
      if (!frame.has_value()) return std::nullopt;
      Envelope envelope;
      if (try_decode(*frame, envelope) != DecodeStatus::kOk) continue;
      if (envelope.xid == xid) {
        if (const auto* reply = std::get_if<RoleReplyMsg>(&envelope.message)) {
          return *reply;
        }
        if (std::holds_alternative<ErrorMsg>(envelope.message)) {
          return std::nullopt;
        }
      }
      answer_probe(envelope);
    }
    return std::nullopt;
  }

  /// Block until an unsolicited ROLE_REPLY (xid 0) arrives — the server's
  /// failover promotion notice. nullopt on timeout/loss.
  [[nodiscard]] std::optional<RoleReplyMsg> await_promotion(
      std::size_t max_frames = 4096) {
    for (std::size_t i = 0; i < max_frames; ++i) {
      const auto frame = sock_.read_frame();
      if (!frame.has_value()) return std::nullopt;
      Envelope envelope;
      if (try_decode(*frame, envelope) != DecodeStatus::kOk) continue;
      if (const auto* reply = std::get_if<RoleReplyMsg>(&envelope.message);
          reply != nullptr && envelope.xid == 0) {
        return *reply;
      }
      answer_probe(envelope);
    }
    return std::nullopt;
  }

  /// Full resync round-trip: send `intent` as chunked RESYNC_REQUESTs, read
  /// the chunked replies, return the combined verdict (missing entries
  /// accumulated across chunks, deleted count from the final chunk).
  [[nodiscard]] std::optional<ResyncReplyMsg> resync(
      std::span<const ResyncEntry> intent, std::size_t chunk = 1024,
      std::size_t max_frames = 65536) {
    const std::uint32_t xid = next_xid_++;
    std::size_t offset = 0;
    do {
      const auto take = std::min(chunk, intent.size() - offset);
      ResyncRequestMsg request;
      request.entries.assign(
          intent.begin() + static_cast<long>(offset),
          intent.begin() + static_cast<long>(offset + take));
      offset += take;
      request.done = offset == intent.size();
      if (!sock_.send_all(encode({xid, std::move(request)}))) {
        return std::nullopt;
      }
    } while (offset < intent.size());

    ResyncReplyMsg combined;
    combined.done = false;
    for (std::size_t i = 0; i < max_frames; ++i) {
      const auto frame = sock_.read_frame();
      if (!frame.has_value()) return std::nullopt;
      Envelope envelope;
      if (try_decode(*frame, envelope) != DecodeStatus::kOk) continue;
      if (envelope.xid == xid) {
        if (const auto* reply = std::get_if<ResyncReplyMsg>(&envelope.message)) {
          combined.missing.insert(combined.missing.end(),
                                  reply->missing.begin(), reply->missing.end());
          if (reply->done) {
            combined.done = true;
            combined.deleted = reply->deleted;
            return combined;
          }
          continue;
        }
        if (std::holds_alternative<ErrorMsg>(envelope.message)) {
          return std::nullopt;
        }
      }
      answer_probe(envelope);
    }
    return std::nullopt;
  }

  [[nodiscard]] FaultySocket& socket() { return sock_; }
  [[nodiscard]] std::uint32_t next_xid() { return next_xid_++; }

 private:
  /// Keep the session alive while we wait on something else: answer the
  /// server's liveness probes, ignore anything that is not a probe.
  void answer_probe(const Envelope& envelope) {
    if (const auto* probe = std::get_if<EchoRequest>(&envelope.message)) {
      (void)sock_.send_all(encode({envelope.xid, EchoReply{probe->payload}}));
    }
  }

  FaultySocket sock_;
  std::uint32_t next_xid_ = 1;
};

/// Sans-io fragmentation driver for Session unit tests: feed `bytes` in
/// seeded random chunks (1..max_chunk each) at virtual time `now_ms`.
template <typename SessionT>
void feed_fragmented(SessionT& session, std::span<const std::uint8_t> bytes,
                     workload::Rng& rng, std::uint64_t now_ms,
                     std::size_t max_chunk = 7) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const auto chunk = std::min<std::size_t>(
        static_cast<std::size_t>(1 + rng.below(max_chunk)), bytes.size() - off);
    session.on_bytes(bytes.subspan(off, chunk), now_ms);
    off += chunk;
  }
}

}  // namespace ofmtl::ofp::testing
