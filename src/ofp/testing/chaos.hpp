// Deterministic chaos scheduling for the OFP control plane: the event-level
// generalization of fault_injection.hpp's byte-level faults. Three layers,
// all seeded so every scenario replays bit-identically from one integer:
//
//  - VirtualClock: an injectable monotonic clock (IoHooks::now_ms) the test
//    thread advances and skews explicitly — echo intervals, probe timeouts,
//    drain deadlines, and accept backoffs all fire on demand instead of on
//    wall-clock sleeps.
//  - SyscallFaultInjector: builds IoHooks whose accept/read/send fail or
//    truncate on a seeded schedule — EMFILE storms for the accept-backoff
//    path, forced partial syscalls for the reassembly/flush paths — while
//    delegating to the real syscalls otherwise.
//  - ChaosScheduler: a seeded decision source over session state-machine
//    edges (connect, role change, chunk sent, barrier, resync): at each edge
//    it may order a kill (hard RST), a stall, a partition, or a clock skew,
//    with magnitudes drawn from the same stream. The soak's failover
//    scenario and the unit tests consume these decisions; because every
//    choice flows from the seed, a failing scenario is a repro command, not
//    a flake.
//
// Header-only test infrastructure: production targets never link it.
#pragma once

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <functional>

#include "ofp/server/server.hpp"
#include "workload/rng.hpp"

namespace ofmtl::ofp::testing {

/// Injectable monotonic milliseconds. Thread-safe: the server loop reads
/// through the hook while the test thread advances.
class VirtualClock {
 public:
  explicit VirtualClock(std::uint64_t start_ms = 1) : now_ms_(start_ms) {}

  [[nodiscard]] std::uint64_t now() const {
    return now_ms_.load(std::memory_order_acquire);
  }
  void advance(std::uint64_t delta_ms) {
    now_ms_.fetch_add(delta_ms, std::memory_order_acq_rel);
  }
  /// IoHooks::now_ms adapter. The clock must outlive the server.
  [[nodiscard]] std::function<std::uint64_t()> hook() {
    return [this] { return now(); };
  }

 private:
  std::atomic<std::uint64_t> now_ms_;
};

/// Seeded syscall-level faults behind IoHooks. Arm-methods may be called
/// from the test thread; the hooks run on the server loop thread, so the
/// armed counters are atomics and the rng is only touched loop-side.
class SyscallFaultInjector {
 public:
  explicit SyscallFaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// Fail the next `n` accepts with `err` (EMFILE by default) before
  /// delegating to the real accept4 again.
  void arm_accept_failures(std::uint32_t n, int err = EMFILE) {
    accept_errno_.store(err, std::memory_order_relaxed);
    accept_failures_.store(n, std::memory_order_release);
  }
  /// Probability that any read/send is truncated to one byte (forced
  /// partial syscall) — exercises reassembly and flush resumption.
  void set_partial_p(double p) { partial_p_ = p; }

  /// Hooks delegating to real syscalls except where armed. The injector
  /// must outlive the server.
  [[nodiscard]] server::IoHooks hooks() {
    server::IoHooks hooks;
    hooks.accept4 = [this](int listen_fd) -> int {
      auto armed = accept_failures_.load(std::memory_order_acquire);
      while (armed > 0) {
        if (accept_failures_.compare_exchange_weak(armed, armed - 1,
                                                   std::memory_order_acq_rel)) {
          errno = accept_errno_.load(std::memory_order_relaxed);
          return -1;
        }
      }
      return ::accept4(listen_fd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    };
    hooks.read = [this](int fd, void* buf, std::size_t len) -> long {
      const auto n = partial(len);
      return ::read(fd, buf, n);
    };
    hooks.send = [this](int fd, const void* buf, std::size_t len) -> long {
      const auto n = partial(len);
      return ::send(fd, buf, n, MSG_NOSIGNAL);
    };
    return hooks;
  }

 private:
  [[nodiscard]] std::size_t partial(std::size_t len) {
    if (len > 1 && partial_p_ > 0 && rng_.chance(partial_p_)) return 1;
    return len;
  }

  workload::Rng rng_;  // loop-thread-only (hooks run on the loop)
  double partial_p_ = 0;
  std::atomic<std::uint32_t> accept_failures_{0};
  std::atomic<int> accept_errno_{EMFILE};
};

/// Where in a controller's lifecycle a chaos decision is taken.
enum class ChaosEdge : std::uint8_t {
  kConnect = 0,  ///< after connect+HELLO
  kRoleChange,   ///< after a role request round-trip
  kChunkSent,    ///< after one flow-mod chunk is on the wire
  kBarrier,      ///< after an echo barrier completes
  kResync,       ///< after a resync round-trip
};

/// What the scheduler ordered at an edge.
enum class ChaosAction : std::uint8_t {
  kNone = 0,
  kKill,       ///< hard-RST the session now
  kStall,      ///< go silent for `param_ms` (virtual or real)
  kPartition,  ///< stop reading (half-open peer) for `param_ms`
  kClockSkew,  ///< jump the virtual clock forward by `param_ms`
};

struct ChaosDecision {
  ChaosAction action = ChaosAction::kNone;
  std::uint64_t param_ms = 0;
};

/// Per-edge decision probabilities and magnitudes.
struct ChaosProfile {
  double kill_p = 0;
  double stall_p = 0;
  double partition_p = 0;
  double clock_skew_p = 0;
  std::uint64_t max_stall_ms = 50;
  std::uint64_t max_partition_ms = 100;
  std::uint64_t max_skew_ms = 1000;
  /// Additionally kill deterministically every `kill_every` kChunkSent
  /// edges (0 = never) — the soak's periodic master-kill cadence.
  std::uint64_t kill_every = 0;
};

/// Seeded decision source over state-machine edges. Single-threaded.
class ChaosScheduler {
 public:
  ChaosScheduler(std::uint64_t seed, ChaosProfile profile)
      : rng_(seed), profile_(profile) {}

  /// Decide what (if anything) happens at this edge. Exactly one rng draw
  /// path per call given the same edge sequence: replayable from the seed.
  [[nodiscard]] ChaosDecision decide(ChaosEdge edge) {
    ChaosDecision decision;
    if (edge == ChaosEdge::kChunkSent) {
      ++chunks_;
      if (profile_.kill_every > 0 && chunks_ % profile_.kill_every == 0) {
        decision.action = ChaosAction::kKill;
        return decision;
      }
    }
    if (profile_.kill_p > 0 && rng_.chance(profile_.kill_p)) {
      decision.action = ChaosAction::kKill;
      return decision;
    }
    if (profile_.stall_p > 0 && rng_.chance(profile_.stall_p)) {
      decision.action = ChaosAction::kStall;
      decision.param_ms = 1 + rng_.below(profile_.max_stall_ms);
      return decision;
    }
    if (profile_.partition_p > 0 && rng_.chance(profile_.partition_p)) {
      decision.action = ChaosAction::kPartition;
      decision.param_ms = 1 + rng_.below(profile_.max_partition_ms);
      return decision;
    }
    if (profile_.clock_skew_p > 0 && rng_.chance(profile_.clock_skew_p)) {
      decision.action = ChaosAction::kClockSkew;
      decision.param_ms = 1 + rng_.below(profile_.max_skew_ms);
      return decision;
    }
    return decision;
  }

  [[nodiscard]] std::uint64_t chunks_seen() const { return chunks_; }

 private:
  workload::Rng rng_;
  ChaosProfile profile_;
  std::uint64_t chunks_ = 0;
};

}  // namespace ofmtl::ofp::testing
