// The served control-plane endpoint: a dependency-free epoll event loop
// terminating OFP framing over TCP for many concurrent controller sessions.
// One loop thread owns every socket and every Session state machine; flow-mod
// batches are applied inline through the FlowModSink (for the production
// sink, one left-right publish per batch — writers serialize on the
// publisher's mutex, data-plane readers stay wait-free, so control churn
// never stalls classification). All peer-facing failure modes — partial
// frames, slow readers, mid-message disconnects, malformed bytes — degrade
// to ERROR replies or graceful per-session closes; no input crosses the
// event loop as an exception.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "ofp/server/control_plane.hpp"
#include "ofp/server/session.hpp"

namespace ofmtl::ofp::server {

/// Injectable I/O + clock surface. Null members mean the real syscall /
/// steady clock; tests swap in a virtual clock (deterministic liveness
/// deadlines without sleeps) and fault-injecting syscalls (EMFILE storms,
/// partial reads/writes) without touching the loop's logic.
struct IoHooks {
  /// Monotonic milliseconds for every session deadline.
  std::function<std::uint64_t()> now_ms;
  /// accept4(listen_fd) -> connection fd, or -1 with errno set.
  std::function<int(int)> accept4;
  /// read(fd, buf, len) -> bytes, 0 on EOF, or -1 with errno set.
  std::function<long(int, void*, std::size_t)> read;
  /// send(fd, buf, len) -> bytes, or -1 with errno set. The default uses
  /// MSG_NOSIGNAL: a racing peer RST must surface as EPIPE, never SIGPIPE.
  std::function<long(int, const void*, std::size_t)> send;
};

struct ServerConfig {
  /// Bind address; controller tests and the soak tool use loopback.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  int backlog = 64;
  /// Accepted sessions beyond this are immediately closed (bounded state).
  std::size_t max_sessions = 64;
  /// Per-session protocol tuning (buffers, liveness, batching).
  SessionConfig session{};
  /// Bytes per read() call on the loop's stack buffer.
  std::size_t read_chunk = 16 * 1024;
  /// Reads per EPOLLIN wake before yielding to other sessions (fairness
  /// under a firehosing peer; level-triggered epoll re-arms the rest).
  std::size_t max_reads_per_event = 4;
  /// Pause before re-arming accept after fd exhaustion (EMFILE/ENFILE):
  /// level-triggered epoll would otherwise re-report the pending accept
  /// every wake and spin the loop at 100% doing nothing.
  std::uint64_t accept_backoff_ms = 100;
  /// Overload admission tuning (thresholds, rate caps, backoff hints).
  AdmissionConfig admission{};
  /// External pressure source in [0,1] — typically the runtime's queue-depth
  /// fraction — sampled once per loop pass and combined (max) with the
  /// sink-latency signal. Null means sink latency alone drives admission.
  std::function<double()> pressure_source;
  /// Sink (publish) latency that maps to pressure 1.0; the EWMA of per-batch
  /// latency is normalized against this budget.
  std::uint64_t publish_latency_budget_us = 20000;
  /// Injectable clock + syscalls; defaults are the real thing.
  IoHooks hooks{};
  /// Read-only stats endpoint, served from the SAME epoll loop: -1 keeps
  /// it off, 0 binds an ephemeral port (read back via stats_port()), any
  /// other value binds that port. Serves GET /metrics (Prometheus text)
  /// and GET /metrics.json.
  int stats_port = -1;
  /// Registry the endpoint renders; null = obs::default_registry(). The
  /// server also registers its own ofmtl_ofp_* provider here for its
  /// lifetime.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Monotonic server-wide counters, sampled racily by stats().
struct ServerStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t sessions_rejected = 0;  ///< over max_sessions
  std::uint64_t sessions_closed = 0;
  std::uint64_t handshakes = 0;         ///< sessions that reached kSteady
  std::uint64_t frames_rx = 0;
  std::uint64_t frames_tx = 0;
  std::uint64_t flow_mods_ok = 0;
  std::uint64_t flow_mods_failed = 0;
  std::uint64_t malformed_frames = 0;
  std::uint64_t echo_timeouts = 0;
  std::uint64_t backpressure_closes = 0;
  std::uint64_t protocol_closes = 0;  ///< handshake/framing/overflow closes
  std::uint64_t overload_closes = 0;  ///< admission rejection budget exhausted
  std::uint64_t bytes_rx = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t flow_mods_shed = 0;  ///< rejected by admission control
  std::uint64_t role_changes = 0;    ///< accepted mutating role requests
  std::uint64_t resyncs = 0;         ///< completed resync diffs
  std::uint64_t promotions = 0;      ///< slaves promoted on master loss
  std::uint64_t accept_pauses = 0;   ///< EMFILE/ENFILE accept backoffs
};

class OfpServer {
 public:
  /// `sink` receives every session's flow-mod batches on the loop thread.
  explicit OfpServer(FlowModSink sink, ServerConfig config = {});
  ~OfpServer();

  OfpServer(const OfpServer&) = delete;
  OfpServer& operator=(const OfpServer&) = delete;

  /// Bind + listen + spawn the event loop. False (with errno intact) when
  /// the socket setup fails; never throws.
  [[nodiscard]] bool start();

  /// Graceful shutdown: wake the loop, close every session, join. Idempotent.
  void stop();

  /// The bound TCP port (resolved after start() for ephemeral binds).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// The bound stats-endpoint port (0 when the endpoint is disabled).
  [[nodiscard]] std::uint16_t stats_port() const { return stats_port_; }
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] ServerStats stats() const;
  /// Currently open sessions (loop-thread count, sampled racily).
  [[nodiscard]] std::size_t active_sessions() const {
    return active_sessions_.load(std::memory_order_relaxed);
  }
  /// Current admission state (loop-thread value, sampled racily for tests
  /// and metrics; transitions are loop-thread-only).
  [[nodiscard]] AdmissionState admission_state() const {
    return static_cast<AdmissionState>(
        admission_state_.load(std::memory_order_relaxed));
  }

 private:
  struct Connection {
    explicit Connection(Session session) : session(std::move(session)) {}
    Session session;
    bool want_write = false;  // current EPOLLOUT interest
    /// Session counter values already folded into the server atomics, so
    /// aggregation is delta-based and sessions can die any time.
    Session::Counters reported{};
  };

  /// One in-flight stats scrape: tiny request buffer in, rendered response
  /// out. HTTP/1.0, connection-close semantics — no keep-alive state.
  struct StatsConn {
    std::string request;
    std::string response;
    std::size_t sent = 0;
  };

  void loop();
  void accept_ready(std::uint64_t now);
  void stats_accept_ready();
  void stats_event(int fd, std::uint32_t events);
  void stats_close(int fd);
  [[nodiscard]] std::string stats_response(const std::string& request);
  [[nodiscard]] obs::MetricsRegistry& metrics_registry();
  /// EMFILE/ENFILE: drop the listen fd from epoll and re-arm after backoff.
  void pause_accept(std::uint64_t now);
  void resume_accept();
  void connection_readable(int fd, Connection& conn);
  /// Flush session output to the socket; toggles EPOLLOUT interest.
  void flush_output(int fd, Connection& conn);
  void close_connection(int fd, CloseReason fallback);
  void update_interest(int fd, Connection& conn);
  /// Fold a session's counter deltas into the server-wide atomics.
  void sync_counters(Connection& conn);
  /// Sample pressure (external source + sink-latency EWMA) into admission.
  void sample_pressure(std::uint64_t now);
  /// Close every fd this server owns (post-join / failed-start cleanup).
  void stop_fds();
  [[nodiscard]] int epoll_timeout_ms(std::uint64_t now_ms) const;
  [[nodiscard]] std::uint64_t now_ms() const;
  /// The per-session sink: wraps sink_ with publish-latency measurement.
  [[nodiscard]] FlowModSink instrumented_sink();

  FlowModSink sink_;
  ServerConfig config_;
  ControlPlane control_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int stats_listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint16_t stats_port_ = 0;
  std::unordered_map<int, StatsConn> stats_conns_;
  obs::MetricsRegistry::ProviderHandle metrics_handle_;
  std::uint64_t next_session_id_ = 1;
  bool accept_paused_ = false;
  std::uint64_t accept_resume_ms_ = 0;
  double publish_ewma_us_ = 0;  // loop-thread-only
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> active_sessions_{0};
  std::atomic<std::uint8_t> admission_state_{0};

  struct AtomicStats {
    std::atomic<std::uint64_t> sessions_accepted{0};
    std::atomic<std::uint64_t> sessions_rejected{0};
    std::atomic<std::uint64_t> sessions_closed{0};
    std::atomic<std::uint64_t> handshakes{0};
    std::atomic<std::uint64_t> frames_rx{0};
    std::atomic<std::uint64_t> frames_tx{0};
    std::atomic<std::uint64_t> flow_mods_ok{0};
    std::atomic<std::uint64_t> flow_mods_failed{0};
    std::atomic<std::uint64_t> malformed_frames{0};
    std::atomic<std::uint64_t> echo_timeouts{0};
    std::atomic<std::uint64_t> backpressure_closes{0};
    std::atomic<std::uint64_t> protocol_closes{0};
    std::atomic<std::uint64_t> overload_closes{0};
    std::atomic<std::uint64_t> bytes_rx{0};
    std::atomic<std::uint64_t> bytes_tx{0};
    std::atomic<std::uint64_t> flow_mods_shed{0};
    std::atomic<std::uint64_t> role_changes{0};
    std::atomic<std::uint64_t> resyncs{0};
    std::atomic<std::uint64_t> promotions{0};
    std::atomic<std::uint64_t> accept_pauses{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace ofmtl::ofp::server
