#include "ofp/server/roles.hpp"

namespace ofmtl::ofp::server {

RoleDecision RoleManager::apply(std::uint64_t session_id,
                                const RoleRequestMsg& request) {
  RoleDecision decision;
  decision.generation_id = max_generation_;
  decision.role = role_of(session_id);

  if (request.role == Role::kNoChange) {
    decision.accepted = true;
    return decision;
  }
  if (request.role == Role::kEqual) {
    // EQUAL carries no generation (OF1.3: the field is only meaningful for
    // master/slave claims), so it is never fenced.
    if (master_ == session_id) master_.reset();
    roles_[session_id] = Role::kEqual;
    decision.accepted = true;
    decision.role = Role::kEqual;
    return decision;
  }

  if (is_stale(request.generation_id)) {
    decision.error = ErrorCode::kStale;
    return decision;
  }
  generation_seen_ = true;
  max_generation_ = request.generation_id;
  decision.generation_id = max_generation_;

  if (request.role == Role::kMaster) {
    if (master_ && *master_ != session_id) {
      roles_[*master_] = Role::kSlave;  // silently demoted, per OF1.3
    }
    master_ = session_id;
    roles_[session_id] = Role::kMaster;
  } else {
    if (master_ == session_id) master_.reset();
    roles_[session_id] = Role::kSlave;
  }
  decision.accepted = true;
  decision.role = roles_[session_id];
  return decision;
}

std::optional<std::uint64_t> RoleManager::on_session_closed(
    std::uint64_t session_id) {
  roles_.erase(session_id);
  if (master_ != session_id) return std::nullopt;
  master_.reset();
  for (const auto& [id, role] : roles_) {  // ordered: lowest id wins
    if (role == Role::kSlave) {
      roles_[id] = Role::kMaster;
      master_ = id;
      return id;
    }
  }
  return std::nullopt;
}

}  // namespace ofmtl::ofp::server
