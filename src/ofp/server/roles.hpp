// Controller role arbitration (OpenFlow 1.3 §6.3.6 semantics): every session
// starts EQUAL; a controller claims MASTER or SLAVE with a generation_id, and
// the switch fences claims whose generation is older — in circular u64
// comparison — than the largest it has accepted, so a partitioned ex-master
// reconnecting with a stale view cannot reclaim the switch. Claiming MASTER
// demotes the previous master to SLAVE (at most one master by construction).
// When the master's session dies, the lowest-id slave is promoted
// deterministically so failover needs no election traffic.
//
// Single-threaded by design: owned by the server event loop (or a sans-io
// test) and never shared across threads.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "ofp/messages.hpp"

namespace ofmtl::ofp::server {

/// Outcome of one role request.
struct RoleDecision {
  bool accepted = false;
  ErrorCode error = ErrorCode::kNone;  ///< kStale when generation-fenced
  Role role = Role::kEqual;            ///< the session's role after the request
  std::uint64_t generation_id = 0;     ///< largest generation accepted so far
};

class RoleManager {
 public:
  /// Register a session; it starts EQUAL.
  void on_session_open(std::uint64_t session_id) {
    roles_.emplace(session_id, Role::kEqual);
  }

  /// Apply one ROLE_REQUEST. kNoChange never mutates (pure query).
  /// kMaster/kSlave claims are generation-fenced; an accepted kMaster claim
  /// demotes the previous master to kSlave.
  RoleDecision apply(std::uint64_t session_id, const RoleRequestMsg& request);

  /// Deregister a closed session. When the master died, the lowest-id slave
  /// is promoted and its id returned so the caller can notify it with an
  /// unsolicited ROLE_REPLY.
  std::optional<std::uint64_t> on_session_closed(std::uint64_t session_id);

  [[nodiscard]] Role role_of(std::uint64_t session_id) const {
    const auto it = roles_.find(session_id);
    return it == roles_.end() ? Role::kEqual : it->second;
  }
  [[nodiscard]] std::optional<std::uint64_t> master() const { return master_; }
  [[nodiscard]] std::uint64_t generation_id() const { return max_generation_; }

 private:
  /// Circular comparison (RFC 1982 style): stale iff the signed distance
  /// from the current maximum is negative.
  [[nodiscard]] bool is_stale(std::uint64_t generation) const {
    return generation_seen_ &&
           static_cast<std::int64_t>(generation - max_generation_) < 0;
  }

  // Ordered so promotion-on-master-loss picks the lowest id deterministically.
  std::map<std::uint64_t, Role> roles_;
  std::optional<std::uint64_t> master_;
  std::uint64_t max_generation_ = 0;
  bool generation_seen_ = false;
};

}  // namespace ofmtl::ofp::server
