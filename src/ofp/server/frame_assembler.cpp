#include "ofp/server/frame_assembler.hpp"

#include "ofp/messages.hpp"

namespace ofmtl::ofp::server {

FrameAssembler::Status FrameAssembler::push(std::span<const std::uint8_t> bytes) {
  if (status_ != Status::kOk) return status_;
  if (buffered() + bytes.size() > buffer_cap_) {
    status_ = Status::kOverflow;
    return status_;
  }
  // Compact before growing: consumed prefix space is reused so the buffer
  // never creeps past cap + one read chunk of capacity.
  if (head_ > 0 && head_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(head_));
    head_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  // A bad length field is detectable as soon as 4 bytes of the offending
  // header are in — poison eagerly so the caller closes before buffering
  // more of a stream it can never re-synchronize.
  const auto view = std::span<const std::uint8_t>{buffer_}.subspan(head_);
  if (const auto length = peek_frame_length(view);
      length.has_value() && *length < kHeaderSize) {
    status_ = Status::kBadLength;
  }
  return status_;
}

bool FrameAssembler::next(std::vector<std::uint8_t>& frame) {
  const auto view = std::span<const std::uint8_t>{buffer_}.subspan(head_);
  const auto length = peek_frame_length(view);
  if (!length.has_value() || *length < kHeaderSize || view.size() < *length) {
    return false;
  }
  frame.assign(view.begin(), view.begin() + static_cast<long>(*length));
  head_ += *length;
  if (head_ == buffer_.size()) {
    buffer_.clear();
    head_ = 0;
  } else {
    // The *next* frame's header is now at the front; re-run the eager
    // bad-length check push() does, so poisoning is not read-chunk-aligned.
    const auto rest = std::span<const std::uint8_t>{buffer_}.subspan(head_);
    if (const auto next_len = peek_frame_length(rest);
        next_len.has_value() && *next_len < kHeaderSize) {
      status_ = Status::kBadLength;
    }
  }
  return true;
}

}  // namespace ofmtl::ofp::server
