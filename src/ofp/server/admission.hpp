// Admission control: the explicit overload state machine between runtime
// backpressure and controller sessions. Pressure samples in [0,1] — the max
// of runtime queue-depth fraction and normalized publish latency — drive
// NORMAL -> THROTTLE -> SHED transitions with hysteresis (distinct enter/exit
// thresholds) and a minimum dwell, so a noisy signal cannot flap the control
// plane. Per-session token buckets meter flow-mod admission:
//
//   NORMAL    everyone admitted within the (optional) per-session rate cap
//   THROTTLE  non-master sessions metered at throttle_fraction of the cap;
//             the master keeps its full cap (shedding load where it hurts
//             least first)
//   SHED      non-master flow-mods rejected outright; the master still
//             metered at its full cap
//
// Rejections earn OFP ERROR kOverload replies carrying a backoff hint, and a
// session exceeding max_consecutive_rejects is drained (bounded retry: a
// controller ignoring backoff loses its session, not the server its memory).
//
// Deterministic and single-threaded: all inputs (pressure, clock) are
// injected, so tests replay exact overload schedules.
#pragma once

#include <cstdint>

#include <unordered_map>

namespace ofmtl::ofp::server {

struct AdmissionConfig {
  double throttle_enter = 0.75;  ///< pressure >= this: NORMAL -> THROTTLE
  double throttle_exit = 0.50;   ///< pressure <= this: THROTTLE -> NORMAL
  double shed_enter = 0.90;      ///< pressure >= this: THROTTLE -> SHED
  double shed_exit = 0.60;       ///< pressure <= this: SHED -> THROTTLE
  /// Minimum ms between state changes (hysteresis dwell).
  std::uint64_t min_dwell_ms = 100;
  /// Flow-mods per second each session may submit; 0 = unmetered. Buckets
  /// hold one second of burst.
  std::uint32_t session_rate_cap = 0;
  /// Fraction of the rate cap non-master sessions keep under THROTTLE
  /// (denominator: cap / throttle_divisor).
  std::uint32_t throttle_divisor = 4;
  /// Backoff hint (ms) carried in kOverload ERROR replies.
  std::uint16_t backoff_hint_ms = 50;
  /// Consecutive rejected mods before the session is drained.
  std::uint32_t max_consecutive_rejects = 4096;
};

enum class AdmissionState : std::uint8_t { kNormal = 0, kThrottle, kShed };

[[nodiscard]] const char* to_string(AdmissionState state);

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {})
      : config_(config) {}

  /// Feed one pressure sample; may advance the state machine (at most one
  /// step per call, dwell permitting).
  void on_pressure_sample(double pressure, std::uint64_t now_ms);

  /// Verdict for one batch of `mods` flow-mods from a session.
  struct Verdict {
    bool admit = true;
    std::uint16_t backoff_hint_ms = 0;  ///< populated on rejection
    bool drain = false;  ///< rejection budget exhausted: drain the session
  };
  [[nodiscard]] Verdict admit(std::uint64_t session_id, bool is_master,
                              std::size_t mods, std::uint64_t now_ms);

  void on_session_closed(std::uint64_t session_id) {
    buckets_.erase(session_id);
  }

  [[nodiscard]] AdmissionState state() const { return state_; }
  [[nodiscard]] double pressure() const { return pressure_; }
  [[nodiscard]] std::uint64_t rejected_mods() const { return rejected_mods_; }

 private:
  struct Bucket {
    double tokens = 0;
    std::uint64_t refilled_ms = 0;
    std::uint32_t consecutive_rejects = 0;
    bool primed = false;
  };

  /// Effective mods/sec for this session in the current state, or 0 when
  /// the session is shed outright.
  [[nodiscard]] std::uint32_t effective_rate(bool is_master) const;

  AdmissionConfig config_;
  AdmissionState state_ = AdmissionState::kNormal;
  double pressure_ = 0;
  std::uint64_t last_transition_ms_ = 0;
  bool transitioned_ = false;
  std::uint64_t rejected_mods_ = 0;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
};

}  // namespace ofmtl::ofp::server
