// Incremental OFP frame reassembly for a TCP byte stream: bytes arrive in
// arbitrary fragments (down to one byte at a time), complete frames come out.
// The buffer is bounded — a peer can never park unbounded memory here — and a
// frame header claiming a length below the fixed header size is a protocol
// error that permanently poisons the stream (framing sync is unrecoverable),
// surfaced as a status instead of an exception: nothing on the server's
// ingest path throws on peer input.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ofmtl::ofp::server {

class FrameAssembler {
 public:
  enum class Status : std::uint8_t {
    kOk = 0,
    kBadLength,  ///< a frame header claimed length < kHeaderSize (sticky)
    kOverflow,   ///< buffered bytes would exceed the cap (sticky)
  };

  /// `buffer_cap` bounds the unconsumed bytes held for one peer. It must
  /// exceed the maximum frame size (64 KiB — the length field is u16), or
  /// legitimate maximal frames could never complete.
  explicit FrameAssembler(std::size_t buffer_cap = kDefaultBufferCap)
      : buffer_cap_(buffer_cap) {}

  static constexpr std::size_t kDefaultBufferCap = 128 * 1024;

  /// Append raw stream bytes. Returns the assembler status; anything but
  /// kOk means the stream is poisoned and the session must close (already
  /// completed frames can still be drained with next()).
  Status push(std::span<const std::uint8_t> bytes);

  /// Pop the next complete frame into `frame` (cleared then filled; capacity
  /// is kept, so a reused vector makes steady-state pops allocation-free).
  /// Returns false when no complete frame is buffered.
  bool next(std::vector<std::uint8_t>& frame);

  /// Unconsumed bytes currently buffered (complete + partial frames).
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - head_; }
  [[nodiscard]] Status status() const { return status_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t head_ = 0;  // consumed prefix of buffer_
  std::size_t buffer_cap_;
  Status status_ = Status::kOk;
};

}  // namespace ofmtl::ofp::server
