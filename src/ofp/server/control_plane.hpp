// The per-switch control-plane state shared by every controller session of
// one server: role arbitration, the flow journal that resync diffs against,
// and the overload admission state machine. Owned by the event-loop thread
// (or a sans-io test harness) and handed to each Session by reference —
// never shared across threads.
#pragma once

#include "ofp/server/admission.hpp"
#include "ofp/server/resync.hpp"
#include "ofp/server/roles.hpp"

namespace ofmtl::ofp::server {

struct ControlPlane {
  RoleManager roles;
  FlowJournal journal;
  AdmissionController admission;

  ControlPlane() = default;
  explicit ControlPlane(AdmissionConfig admission_config)
      : admission(admission_config) {}
};

}  // namespace ofmtl::ofp::server
