#include "ofp/server/flow_mod_sink.hpp"

#include <stdexcept>

namespace ofmtl::ofp::server {

void apply_mods(MultiTableLookup& tables, std::span<const PendingFlowMod> mods,
                std::span<ErrorCode> results) {
  for (std::size_t i = 0; i < mods.size(); ++i) {
    const auto& mod = mods[i].mod;
    const std::size_t table = mod.table_id;
    if (table >= tables.table_count()) {
      results[i] = ErrorCode::kBadValue;
      continue;
    }
    switch (mod.command) {
      case FlowModCommand::kAdd:
        if (tables.contains_entry(table, mod.entry.id)) {
          results[i] = ErrorCode::kDuplicateEntry;
          continue;
        }
        tables.insert_entry(table, mod.entry);
        break;
      case FlowModCommand::kModify:
        if (!tables.remove_entry(table, mod.entry.id)) {
          results[i] = ErrorCode::kUnknownEntry;
          continue;
        }
        tables.insert_entry(table, mod.entry);
        break;
      case FlowModCommand::kDelete:
        if (!tables.remove_entry(table, mod.entry.id)) {
          results[i] = ErrorCode::kUnknownEntry;
          continue;
        }
        break;
    }
    results[i] = ErrorCode::kNone;
  }
}

FlowModSink make_classifier_sink(runtime::SnapshotClassifier& classifier) {
  return [&classifier](std::span<const PendingFlowMod> mods,
                       std::span<ErrorCode> results) {
    // One publish per batch. update() invokes the mutate twice (once per
    // side); apply_mods is deterministic over identical logical content, so
    // both sides make identical decisions — results are simply written
    // twice with the same values.
    classifier.update([mods, results](MultiTableLookup& tables) {
      apply_mods(tables, mods, results);
    });
  };
}

FlowModSink make_model_sink(SwitchModel& model, std::mutex& mutex) {
  return [&model, &mutex](std::span<const PendingFlowMod> mods,
                          std::span<ErrorCode> results) {
    const std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t i = 0; i < mods.size(); ++i) {
      FlowMod flow_mod;
      flow_mod.command = mods[i].mod.command;
      flow_mod.table = mods[i].mod.table_id;
      flow_mod.entry = mods[i].mod.entry;
      flow_mod.timeouts = mods[i].mod.timeouts;
      try {
        model.apply(flow_mod);
        results[i] = ErrorCode::kNone;
      } catch (const std::invalid_argument&) {
        results[i] = ErrorCode::kBadValue;
      }
    }
  };
}

}  // namespace ofmtl::ofp::server
