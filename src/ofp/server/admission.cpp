#include "ofp/server/admission.hpp"

#include <algorithm>

namespace ofmtl::ofp::server {

const char* to_string(AdmissionState state) {
  switch (state) {
    case AdmissionState::kNormal: return "normal";
    case AdmissionState::kThrottle: return "throttle";
    case AdmissionState::kShed: return "shed";
  }
  return "unknown";
}

void AdmissionController::on_pressure_sample(double pressure,
                                             std::uint64_t now_ms) {
  pressure_ = std::clamp(pressure, 0.0, 1.0);
  if (transitioned_ && now_ms - last_transition_ms_ < config_.min_dwell_ms) {
    return;
  }
  AdmissionState next = state_;
  switch (state_) {
    case AdmissionState::kNormal:
      if (pressure_ >= config_.throttle_enter) next = AdmissionState::kThrottle;
      break;
    case AdmissionState::kThrottle:
      if (pressure_ >= config_.shed_enter) {
        next = AdmissionState::kShed;
      } else if (pressure_ <= config_.throttle_exit) {
        next = AdmissionState::kNormal;
      }
      break;
    case AdmissionState::kShed:
      if (pressure_ <= config_.shed_exit) next = AdmissionState::kThrottle;
      break;
  }
  if (next != state_) {
    state_ = next;
    last_transition_ms_ = now_ms;
    transitioned_ = true;
  }
}

std::uint32_t AdmissionController::effective_rate(bool is_master) const {
  switch (state_) {
    case AdmissionState::kNormal:
      return config_.session_rate_cap;
    case AdmissionState::kThrottle:
      if (is_master || config_.session_rate_cap == 0) {
        return config_.session_rate_cap;
      }
      return std::max(1U, config_.session_rate_cap /
                              std::max(1U, config_.throttle_divisor));
    case AdmissionState::kShed:
      return config_.session_rate_cap;  // masters only reach here (see admit)
  }
  return 0;
}

AdmissionController::Verdict AdmissionController::admit(
    std::uint64_t session_id, bool is_master, std::size_t mods,
    std::uint64_t now_ms) {
  Verdict verdict;
  auto& bucket = buckets_[session_id];

  const auto reject = [&] {
    verdict.admit = false;
    verdict.backoff_hint_ms = config_.backoff_hint_ms;
    rejected_mods_ += mods;
    bucket.consecutive_rejects = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        std::uint64_t{bucket.consecutive_rejects} + mods, 0xFFFFFFFFULL));
    verdict.drain = bucket.consecutive_rejects >= config_.max_consecutive_rejects;
    return verdict;
  };

  if (state_ == AdmissionState::kShed && !is_master) return reject();

  const std::uint32_t rate = effective_rate(is_master);
  if (rate == 0) {  // unmetered
    bucket.consecutive_rejects = 0;
    return verdict;
  }

  if (!bucket.primed) {
    bucket.tokens = rate;  // one second of burst to start
    bucket.refilled_ms = now_ms;
    bucket.primed = true;
  } else {
    const auto elapsed = now_ms - bucket.refilled_ms;
    bucket.tokens = std::min<double>(
        rate, bucket.tokens + static_cast<double>(elapsed) * rate / 1000.0);
    bucket.refilled_ms = now_ms;
  }
  if (bucket.tokens < static_cast<double>(mods)) return reject();
  bucket.tokens -= static_cast<double>(mods);
  bucket.consecutive_rejects = 0;
  return verdict;
}

}  // namespace ofmtl::ofp::server
