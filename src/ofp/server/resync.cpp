#include "ofp/server/resync.hpp"

#include <algorithm>

namespace ofmtl::ofp::server {

namespace {

bool entry_less(const ResyncEntry& a, const ResyncEntry& b) {
  if (a.table_id != b.table_id) return a.table_id < b.table_id;
  return a.entry_id < b.entry_id;
}

}  // namespace

std::vector<ResyncEntry> FlowJournal::snapshot() const {
  std::vector<ResyncEntry> out;
  out.reserve(entries_.size());
  for (const auto& [key, cookie] : entries_) {
    out.push_back({static_cast<std::uint8_t>(key >> 32),
                   static_cast<FlowEntryId>(key & 0xFFFFFFFF), cookie});
  }
  return out;
}

ResyncOutcome compute_resync(const FlowJournal& journal,
                             std::span<const ResyncEntry> digest) {
  ResyncOutcome outcome;
  std::unordered_map<std::uint64_t, std::uint64_t> intended;
  intended.reserve(digest.size());
  for (const auto& entry : digest) {
    intended[FlowJournal::key(entry.table_id, entry.entry_id)] = entry.cookie;
  }

  // Journal side: anything not intended, or intended under a different
  // cookie, is stale and must go.
  for (const auto& [key, cookie] : journal.raw()) {
    const auto it = intended.find(key);
    if (it != intended.end() && it->second == cookie) continue;
    FlowModMsg del;
    del.command = FlowModCommand::kDelete;
    del.table_id = static_cast<std::uint8_t>(key >> 32);
    del.entry.id = static_cast<FlowEntryId>(key & 0xFFFFFFFF);
    outcome.deletes.push_back(std::move(del));
  }

  // Digest side: anything not journaled under the same cookie must be
  // re-sent (covers both never-arrived and deleted-as-stale).
  const auto& held = journal.raw();
  for (const auto& entry : digest) {
    const auto it = held.find(FlowJournal::key(entry.table_id, entry.entry_id));
    if (it != held.end() && it->second == entry.cookie) continue;
    outcome.missing.push_back(entry);
  }

  std::sort(outcome.deletes.begin(), outcome.deletes.end(),
            [](const FlowModMsg& a, const FlowModMsg& b) {
              if (a.table_id != b.table_id) return a.table_id < b.table_id;
              return a.entry.id < b.entry.id;
            });
  std::sort(outcome.missing.begin(), outcome.missing.end(), entry_less);
  return outcome;
}

}  // namespace ofmtl::ofp::server
