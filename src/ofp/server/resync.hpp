// Flow-table resync: the switch-side journal of what the control plane has
// successfully published, and the diff that reconciles it against a
// surviving controller's intent after failover.
//
// The journal records (table, entry_id) -> cookie for every flow-mod the
// sink accepted, maintained on the event-loop thread in sink order, so it is
// exactly the logical content of the published table (plus the cookie stamp
// the classifier itself does not store). On RESYNC_REQUEST the controller
// sends its intended table as a cookie digest; compute_resync() partitions
// the union into
//   - stale: journaled but no longer intended, or intended with a different
//     cookie (the controller re-issued the entry with new content) -> one
//     batch of DELETE mods through the ordinary sink path (one O(delta)
//     left-right publish), and
//   - missing: intended but not journaled (lost in flight), or deleted as
//     stale above -> reported back so the controller re-sends exactly those.
// Convergence argument: after the deletes apply and the controller re-sends
// `missing`, journal == digest, and since the journal mirrors the published
// table, the table bitwise-matches the controller's intent.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "ofp/messages.hpp"

namespace ofmtl::ofp::server {

/// Journal of successfully applied flow-mods, keyed by (table, entry id).
class FlowJournal {
 public:
  /// Fold one sink-accepted mod into the journal.
  void record(const FlowModMsg& mod) {
    if (mod.command == FlowModCommand::kDelete) {
      entries_.erase(key(mod.table_id, mod.entry.id));
    } else {
      entries_[key(mod.table_id, mod.entry.id)] = mod.cookie;
    }
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool contains(std::uint8_t table,
                              FlowEntryId entry_id) const {
    return entries_.contains(key(table, entry_id));
  }

  /// Snapshot as digest entries (unordered).
  [[nodiscard]] std::vector<ResyncEntry> snapshot() const;

  [[nodiscard]] static std::uint64_t key(std::uint8_t table,
                                         FlowEntryId entry_id) {
    return std::uint64_t{table} << 32 | entry_id;
  }

  [[nodiscard]] const std::unordered_map<std::uint64_t, std::uint64_t>& raw()
      const {
    return entries_;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> entries_;  // key -> cookie
};

/// The reconciliation plan for one complete digest.
struct ResyncOutcome {
  /// DELETE mods for stale journal entries, sorted by (table, id) so the
  /// plan is deterministic regardless of hash-map iteration order.
  std::vector<FlowModMsg> deletes;
  /// Digest entries the controller must re-send (absent or cookie-stale),
  /// sorted like `deletes`.
  std::vector<ResyncEntry> missing;
};

/// Diff the journal against the controller's intended table. Pure: mutates
/// nothing; the caller applies `deletes` through its sink (updating the
/// journal via record()) and reports `missing` back to the controller.
[[nodiscard]] ResyncOutcome compute_resync(
    const FlowJournal& journal, std::span<const ResyncEntry> digest);

}  // namespace ofmtl::ofp::server
