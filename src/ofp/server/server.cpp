#include "ofp/server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace ofmtl::ofp::server {

namespace {

// Level-triggered interest masks; EPOLLRDHUP so a peer's half-close wakes
// the loop even when no payload bytes follow.
constexpr std::uint32_t kReadMask = EPOLLIN | EPOLLRDHUP;

}  // namespace

OfpServer::OfpServer(FlowModSink sink, ServerConfig config)
    : sink_(std::move(sink)),
      config_(std::move(config)),
      control_(config_.admission) {}

OfpServer::~OfpServer() { stop(); }

std::uint64_t OfpServer::now_ms() const {
  if (config_.hooks.now_ms) return config_.hooks.now_ms();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

FlowModSink OfpServer::instrumented_sink() {
  // Wrap the user sink with publish-latency measurement: the EWMA feeds
  // admission control, so a publisher that slows down (lock contention,
  // giant deltas) shows up as pressure even when queue depth looks fine.
  // Loop-thread-only state; the real clock is used deliberately — latency
  // is a measurement, not a deadline, so a virtual-clock test still works.
  return [this](std::span<const PendingFlowMod> mods,
                std::span<ErrorCode> results) {
    const auto start = std::chrono::steady_clock::now();
    sink_(mods, results);
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    constexpr double kAlpha = 0.2;
    publish_ewma_us_ =
        (1 - kAlpha) * publish_ewma_us_ + kAlpha * static_cast<double>(us);
  };
}

obs::MetricsRegistry& OfpServer::metrics_registry() {
  return config_.metrics != nullptr ? *config_.metrics
                                    : obs::default_registry();
}

bool OfpServer::start() {
  if (running_.load(std::memory_order_acquire)) return false;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1 ||
      ::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, config_.backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    stop_fds();
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    stop_fds();
    return false;
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    stop_fds();
    return false;
  }

  // Optional stats endpoint: a second listener in the SAME epoll loop, so
  // scrapes serialize with session work and need no extra synchronization.
  if (config_.stats_port >= 0) {
    stats_listen_fd_ =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (stats_listen_fd_ < 0) {
      stop_fds();
      return false;
    }
    (void)::setsockopt(stats_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof one);
    sockaddr_in stats_addr{};
    stats_addr.sin_family = AF_INET;
    stats_addr.sin_port = htons(static_cast<std::uint16_t>(config_.stats_port));
    if (::inet_pton(AF_INET, config_.bind_address.c_str(),
                    &stats_addr.sin_addr) != 1 ||
        ::bind(stats_listen_fd_,
               reinterpret_cast<const sockaddr*>(&stats_addr),
               sizeof stats_addr) != 0 ||
        ::listen(stats_listen_fd_, 16) != 0) {
      stop_fds();
      return false;
    }
    sockaddr_in stats_bound{};
    socklen_t stats_bound_len = sizeof stats_bound;
    if (::getsockname(stats_listen_fd_,
                      reinterpret_cast<sockaddr*>(&stats_bound),
                      &stats_bound_len) == 0) {
      stats_port_ = ntohs(stats_bound.sin_port);
    }
    ev.events = EPOLLIN;
    ev.data.fd = stats_listen_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, stats_listen_fd_, &ev) != 0) {
      stop_fds();
      return false;
    }
  }

  // The server's own health as a metrics provider; the RAII handle
  // unregisters at stop(), so a scrape can never observe a dead server.
  metrics_handle_ = metrics_registry().register_provider(
      [this](obs::MetricsBuilder& b) {
        const ServerStats s = stats();
        b.counter("ofmtl_ofp_sessions_accepted_total",
                  "controller sessions accepted",
                  static_cast<double>(s.sessions_accepted));
        b.counter("ofmtl_ofp_sessions_closed_total",
                  "controller sessions closed",
                  static_cast<double>(s.sessions_closed));
        b.counter("ofmtl_ofp_handshakes_total",
                  "sessions that completed the HELLO handshake",
                  static_cast<double>(s.handshakes));
        b.counter("ofmtl_ofp_frames_rx_total", "OFP frames received",
                  static_cast<double>(s.frames_rx));
        b.counter("ofmtl_ofp_frames_tx_total", "OFP frames sent",
                  static_cast<double>(s.frames_tx));
        b.counter("ofmtl_ofp_flow_mods_ok_total", "flow-mods applied",
                  static_cast<double>(s.flow_mods_ok));
        b.counter("ofmtl_ofp_flow_mods_failed_total", "flow-mods rejected",
                  static_cast<double>(s.flow_mods_failed));
        b.counter("ofmtl_ofp_flow_mods_shed_total",
                  "flow-mods shed by admission control",
                  static_cast<double>(s.flow_mods_shed));
        b.counter("ofmtl_ofp_malformed_frames_total",
                  "frames rejected by the decoder",
                  static_cast<double>(s.malformed_frames));
        b.counter("ofmtl_ofp_bytes_rx_total", "bytes received",
                  static_cast<double>(s.bytes_rx));
        b.counter("ofmtl_ofp_bytes_tx_total", "bytes sent",
                  static_cast<double>(s.bytes_tx));
        b.gauge("ofmtl_ofp_active_sessions", "currently open sessions",
                static_cast<double>(active_sessions()));
        b.gauge("ofmtl_ofp_admission_state",
                "admission state (0 normal, 1 shedding, 2 rejecting)",
                static_cast<double>(static_cast<int>(admission_state())));
      });

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
  return true;
}

void OfpServer::stop() {
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    const std::uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof one);
  }
  if (thread_.joinable()) thread_.join();
  metrics_handle_.reset();
  stop_fds();
}

void OfpServer::stop_fds() {
  for (const auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  for (const auto& [fd, conn] : stats_conns_) ::close(fd);
  stats_conns_.clear();
  active_sessions_.store(0, std::memory_order_relaxed);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (stats_listen_fd_ >= 0) ::close(stats_listen_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = stats_listen_fd_ = -1;
}

int OfpServer::epoll_timeout_ms(std::uint64_t now) const {
  // Periodic floor so running_ is re-checked even with idle sessions.
  std::uint64_t timeout = 200;
  for (const auto& [fd, conn] : connections_) {
    if (const auto deadline = conn->session.next_deadline_ms()) {
      const auto wait = *deadline > now ? *deadline - now : 0;
      if (wait < timeout) timeout = wait;
    }
  }
  if (accept_paused_) {
    const auto wait = accept_resume_ms_ > now ? accept_resume_ms_ - now : 0;
    if (wait < timeout) timeout = wait;
  }
  return static_cast<int>(timeout);
}

void OfpServer::loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  std::vector<int> doomed;

  while (running_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(epoll_fd_, events, kMaxEvents, epoll_timeout_ms(now_ms()));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone: shutting down
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        (void)!::read(wake_fd_, &drained, sizeof drained);
        continue;
      }
      if (fd == listen_fd_) {
        accept_ready(now_ms());
        continue;
      }
      if (fd == stats_listen_fd_) {
        stats_accept_ready();
        continue;
      }
      if (stats_conns_.contains(fd)) {
        stats_event(fd, events[i].events);
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this wake
      Connection& conn = *it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_connection(fd, CloseReason::kPeerClosed);
        continue;
      }
      if (events[i].events & (EPOLLIN | EPOLLRDHUP)) {
        connection_readable(fd, conn);
        if (!connections_.contains(fd)) continue;
      }
      if (events[i].events & EPOLLOUT) {
        flush_output(fd, conn);
        if (!connections_.contains(fd)) continue;
      }
      if (conn.session.wants_close()) {
        close_connection(fd, CloseReason::kPeerClosed);
      }
    }

    // Liveness ticks + deferred closes, outside the event walk.
    const auto now = now_ms();
    sample_pressure(now);
    if (accept_paused_ && now >= accept_resume_ms_) resume_accept();
    doomed.clear();
    for (auto& [fd, conn] : connections_) {
      if (const auto deadline = conn->session.next_deadline_ms();
          deadline.has_value() && now >= *deadline) {
        conn->session.on_tick(now);
        flush_output(fd, *conn);
        sync_counters(*conn);
      }
      if (conn->session.wants_close()) doomed.push_back(fd);
    }
    for (const int fd : doomed) close_connection(fd, CloseReason::kPeerClosed);
  }

  // Shutdown: every session closes as kServerShutdown.
  for (const auto& [fd, conn] : connections_) {
    sync_counters(*conn);
    ::close(fd);
    stats_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
  }
  connections_.clear();
  active_sessions_.store(0, std::memory_order_relaxed);
}

void OfpServer::accept_ready(std::uint64_t now) {
  if (accept_paused_) return;
  while (true) {
    const int fd = config_.hooks.accept4
                       ? config_.hooks.accept4(listen_fd_)
                       : ::accept4(listen_fd_, nullptr, nullptr,
                                   SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      // fd exhaustion: the pending connection stays queued, and
      // level-triggered epoll would re-report it every wake — a 100%-CPU
      // accept spin. Pause accepting for a backoff instead; closes
      // elsewhere free fds in the meantime.
      if (errno == EMFILE || errno == ENFILE) pause_accept(now);
      // EAGAIN: drained. Aborted handshakes: nothing to do this wake.
      return;
    }
    if (connections_.size() >= config_.max_sessions) {
      stats_.sessions_rejected.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_unique<Connection>(Session{
        next_session_id_++, config_.session, instrumented_sink(), control_,
        now_ms()});
    epoll_event ev{};
    ev.events = kReadMask;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    stats_.sessions_accepted.fetch_add(1, std::memory_order_relaxed);
    Connection& ref = *conn;
    connections_.emplace(fd, std::move(conn));
    active_sessions_.fetch_add(1, std::memory_order_relaxed);
    flush_output(fd, ref);  // our HELLO
  }
}

void OfpServer::stats_accept_ready() {
  while (true) {
    const int fd = ::accept4(stats_listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN: drained; errors: nothing to serve
    if (stats_conns_.size() >= 16) {  // bounded scrape state
      ::close(fd);
      continue;
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    stats_conns_.emplace(fd, StatsConn{});
  }
}

std::string OfpServer::stats_response(const std::string& request) {
  // Only the request line matters: "GET <path> HTTP/1.x". Anything else is
  // answered, never crashes the loop — the endpoint is read-only.
  std::string path;
  if (request.compare(0, 4, "GET ") == 0) {
    const std::size_t end = request.find(' ', 4);
    if (end != std::string::npos) path = request.substr(4, end - 4);
  }
  std::string body;
  const char* content_type = "text/plain; version=0.0.4; charset=utf-8";
  const char* status = "200 OK";
  if (path == "/metrics" || path == "/") {
    body = metrics_registry().render_prometheus();
  } else if (path == "/metrics.json") {
    body = metrics_registry().render_json();
    content_type = "application/json";
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }
  std::string response = "HTTP/1.0 ";
  response += status;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: ";
  response += std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  return response;
}

void OfpServer::stats_event(int fd, std::uint32_t events) {
  auto it = stats_conns_.find(fd);
  if (it == stats_conns_.end()) return;
  StatsConn& conn = it->second;
  if (events & (EPOLLHUP | EPOLLERR)) {
    stats_close(fd);
    return;
  }
  if (events & (EPOLLIN | EPOLLRDHUP)) {
    char buf[1024];
    while (true) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n > 0) {
        conn.request.append(buf, static_cast<std::size_t>(n));
        if (conn.request.size() > 4096) {  // hostile header flood: drop
          stats_close(fd);
          return;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n == 0 && conn.request.find("\r\n\r\n") == std::string::npos &&
          conn.request.find('\n') == std::string::npos) {
        stats_close(fd);  // peer gone before a full request line
        return;
      }
      break;
    }
    if (conn.response.empty() &&
        (conn.request.find("\r\n\r\n") != std::string::npos ||
         conn.request.find('\n') != std::string::npos)) {
      conn.response = stats_response(conn.request);
      epoll_event ev{};
      ev.events = EPOLLOUT | EPOLLRDHUP;
      ev.data.fd = fd;
      (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
    }
  }
  if (!conn.response.empty()) {
    while (conn.sent < conn.response.size()) {
      const ssize_t n =
          ::send(fd, conn.response.data() + conn.sent,
                 conn.response.size() - conn.sent, MSG_NOSIGNAL);
      if (n > 0) {
        conn.sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      stats_close(fd);  // EPIPE and friends
      return;
    }
    stats_close(fd);  // fully served; HTTP/1.0 close semantics
  }
}

void OfpServer::stats_close(int fd) {
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  stats_conns_.erase(fd);
}

void OfpServer::pause_accept(std::uint64_t now) {
  if (accept_paused_) return;
  accept_paused_ = true;
  accept_resume_ms_ = now + config_.accept_backoff_ms;
  stats_.accept_pauses.fetch_add(1, std::memory_order_relaxed);
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
}

void OfpServer::resume_accept() {
  accept_paused_ = false;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
}

void OfpServer::connection_readable(int fd, Connection& conn) {
  std::uint8_t buf[16 * 1024];
  const std::size_t chunk = std::min(config_.read_chunk, sizeof buf);
  bool peer_closed = false;
  for (std::size_t round = 0; round < config_.max_reads_per_event; ++round) {
    const ssize_t n = config_.hooks.read ? config_.hooks.read(fd, buf, chunk)
                                         : ::read(fd, buf, chunk);
    if (n > 0) {
      stats_.bytes_rx.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      const bool was_handshaking =
          conn.session.state() == Session::State::kAwaitHello;
      conn.session.on_bytes({buf, static_cast<std::size_t>(n)}, now_ms());
      if (was_handshaking &&
          conn.session.state() == Session::State::kSteady) {
        stats_.handshakes.fetch_add(1, std::memory_order_relaxed);
      }
      if (static_cast<std::size_t>(n) < chunk) break;  // drained
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    peer_closed = true;  // ECONNRESET and friends: treat as gone
    break;
  }
  if (peer_closed) conn.session.on_peer_closed(now_ms());
  sync_counters(conn);
  flush_output(fd, conn);
}

void OfpServer::flush_output(int fd, Connection& conn) {
  while (true) {
    const auto pending = conn.session.pending_output();
    if (pending.empty()) break;
    // MSG_NOSIGNAL: a peer that RSTs between our poll and this send must
    // surface as EPIPE (handled below), not a process-killing SIGPIPE.
    const ssize_t n =
        config_.hooks.send
            ? config_.hooks.send(fd, pending.data(), pending.size())
            : ::send(fd, pending.data(), pending.size(), MSG_NOSIGNAL);
    if (n > 0) {
      stats_.bytes_tx.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      conn.session.consume_output(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        update_interest(fd, conn);
      }
      return;
    }
    // EPIPE/ECONNRESET: the peer is gone, nothing left to flush.
    conn.session.mark_closed();
    return;
  }
  if (conn.want_write) {
    conn.want_write = false;
    update_interest(fd, conn);
  }
}

void OfpServer::update_interest(int fd, Connection& conn) {
  epoll_event ev{};
  ev.events = kReadMask | (conn.want_write ? EPOLLOUT : 0U);
  ev.data.fd = fd;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void OfpServer::close_connection(int fd, CloseReason fallback) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  sync_counters(conn);
  const auto reason = conn.session.close_reason() != CloseReason::kNone
                          ? conn.session.close_reason()
                          : fallback;
  switch (reason) {
    case CloseReason::kEchoTimeout:
      stats_.echo_timeouts.fetch_add(1, std::memory_order_relaxed);
      break;
    case CloseReason::kBackpressure:
      stats_.backpressure_closes.fetch_add(1, std::memory_order_relaxed);
      break;
    case CloseReason::kHandshakeFailed:
    case CloseReason::kProtocolError:
    case CloseReason::kReadOverflow:
      stats_.protocol_closes.fetch_add(1, std::memory_order_relaxed);
      break;
    case CloseReason::kOverload:
      stats_.overload_closes.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
  stats_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t dead_id = conn.session.id();
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
  active_sessions_.fetch_sub(1, std::memory_order_relaxed);

  // Failover: when the master died, the lowest-id surviving slave is
  // promoted and learns it via an unsolicited ROLE_REPLY.
  control_.admission.on_session_closed(dead_id);
  if (const auto promoted = control_.roles.on_session_closed(dead_id)) {
    for (auto& [pfd, pconn] : connections_) {
      if (pconn->session.id() != *promoted) continue;
      pconn->session.notify_role(Role::kMaster, control_.roles.generation_id(),
                                 now_ms());
      stats_.promotions.fetch_add(1, std::memory_order_relaxed);
      flush_output(pfd, *pconn);
      sync_counters(*pconn);
      break;
    }
  }
}

void OfpServer::sample_pressure(std::uint64_t now) {
  double pressure =
      config_.publish_latency_budget_us > 0
          ? publish_ewma_us_ /
                static_cast<double>(config_.publish_latency_budget_us)
          : 0.0;
  if (config_.pressure_source) {
    pressure = std::max(pressure, config_.pressure_source());
  }
  control_.admission.on_pressure_sample(pressure, now);
  admission_state_.store(static_cast<std::uint8_t>(control_.admission.state()),
                         std::memory_order_relaxed);
}

void OfpServer::sync_counters(Connection& conn) {
  const auto& c = conn.session.counters();
  auto bump = [](std::atomic<std::uint64_t>& stat, std::uint64_t now_value,
                 std::uint64_t& reported) {
    stat.fetch_add(now_value - reported, std::memory_order_relaxed);
    reported = now_value;
  };
  bump(stats_.frames_rx, c.frames_rx, conn.reported.frames_rx);
  bump(stats_.frames_tx, c.frames_tx, conn.reported.frames_tx);
  bump(stats_.flow_mods_ok, c.flow_mods_ok, conn.reported.flow_mods_ok);
  bump(stats_.flow_mods_failed, c.flow_mods_failed,
       conn.reported.flow_mods_failed);
  bump(stats_.malformed_frames, c.malformed_frames,
       conn.reported.malformed_frames);
  bump(stats_.flow_mods_shed, c.flow_mods_shed, conn.reported.flow_mods_shed);
  bump(stats_.role_changes, c.role_changes, conn.reported.role_changes);
  bump(stats_.resyncs, c.resyncs, conn.reported.resyncs);
}

ServerStats OfpServer::stats() const {
  ServerStats out;
  out.sessions_accepted = stats_.sessions_accepted.load(std::memory_order_relaxed);
  out.sessions_rejected = stats_.sessions_rejected.load(std::memory_order_relaxed);
  out.sessions_closed = stats_.sessions_closed.load(std::memory_order_relaxed);
  out.handshakes = stats_.handshakes.load(std::memory_order_relaxed);
  out.frames_rx = stats_.frames_rx.load(std::memory_order_relaxed);
  out.frames_tx = stats_.frames_tx.load(std::memory_order_relaxed);
  out.flow_mods_ok = stats_.flow_mods_ok.load(std::memory_order_relaxed);
  out.flow_mods_failed = stats_.flow_mods_failed.load(std::memory_order_relaxed);
  out.malformed_frames = stats_.malformed_frames.load(std::memory_order_relaxed);
  out.echo_timeouts = stats_.echo_timeouts.load(std::memory_order_relaxed);
  out.backpressure_closes =
      stats_.backpressure_closes.load(std::memory_order_relaxed);
  out.protocol_closes = stats_.protocol_closes.load(std::memory_order_relaxed);
  out.overload_closes = stats_.overload_closes.load(std::memory_order_relaxed);
  out.bytes_rx = stats_.bytes_rx.load(std::memory_order_relaxed);
  out.bytes_tx = stats_.bytes_tx.load(std::memory_order_relaxed);
  out.flow_mods_shed = stats_.flow_mods_shed.load(std::memory_order_relaxed);
  out.role_changes = stats_.role_changes.load(std::memory_order_relaxed);
  out.resyncs = stats_.resyncs.load(std::memory_order_relaxed);
  out.promotions = stats_.promotions.load(std::memory_order_relaxed);
  out.accept_pauses = stats_.accept_pauses.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ofmtl::ofp::server
