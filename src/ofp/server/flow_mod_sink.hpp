// FlowModSink adapters: where a session's decoded flow-mod batches land.
//
// The production sink funnels each batch through the left-right
// SnapshotClassifier as ONE coalesced update() — one publish (two O(delta)
// side-applies) per batch, not per mod — so sustained control churn from
// many controllers costs the data path at most one epoch bump per batch and
// readers stay wait-free throughout (the publisher never blocks them; see
// docs/ARCHITECTURE.md "Left-right snapshot publish"). The model sink wraps
// a SwitchModel for single-threaded agent-style serving and for the soak
// oracle.
//
// Both sinks validate before mutating and report per-mod ErrorCodes instead
// of throwing: a controller's bad mod earns an ERROR reply, never an
// exception across the event loop.
#pragma once

#include <mutex>

#include "core/switch_model.hpp"
#include "ofp/server/session.hpp"
#include "runtime/snapshot.hpp"

namespace ofmtl::ofp::server {

/// Sink over the left-right publisher. `classifier` must outlive the server.
/// Thread-safe: the classifier serializes writers internally.
[[nodiscard]] FlowModSink make_classifier_sink(
    runtime::SnapshotClassifier& classifier);

/// Sink over a SwitchModel (reference + decomposed pipeline + stats), with
/// an external mutex when several server threads share the model. `model`
/// and `mutex` must outlive the server.
[[nodiscard]] FlowModSink make_model_sink(SwitchModel& model,
                                          std::mutex& mutex);

/// Validate-and-apply one batch against a bare MultiTableLookup — the
/// shared core of the classifier sink and of oracle construction in tests
/// and the soak tool. `results` must be mods.size() long; mods failing
/// validation are skipped (kDuplicateEntry / kUnknownEntry / kBadValue),
/// the rest apply in order. Deterministic: same tables + same batch ==
/// same results and same final state.
void apply_mods(MultiTableLookup& tables,
                std::span<const PendingFlowMod> mods,
                std::span<ErrorCode> results);

}  // namespace ofmtl::ofp::server
