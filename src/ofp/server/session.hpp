// One controller session as a sans-io state machine: raw bytes in, raw
// bytes out, virtual milliseconds for every deadline. The epoll server owns
// the socket; this class owns the protocol — HELLO handshake, steady-state
// message handling, ECHO-probe liveness, bounded write buffering with
// backpressure, and a draining close that flushes queued replies before the
// transport hangs up. Keeping the state machine transport-free is what makes
// byte-level fault injection deterministic: unit tests feed arbitrary
// fragmentations and clock schedules without a socket in sight.
//
// Robustness contract (the tentpole property): no peer input — truncated,
// oversized, corrupt, or mis-sequenced — ever surfaces as an exception or
// crash. Malformed frames answer with OFP ERROR; unrecoverable streams
// (framing desync, buffer overflow, liveness loss) drain and close.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ofp/messages.hpp"
#include "ofp/server/control_plane.hpp"
#include "ofp/server/frame_assembler.hpp"

namespace ofmtl::ofp::server {

struct SessionConfig {
  /// Caps the unconsumed inbound bytes buffered for reassembly. Must exceed
  /// the 64 KiB maximum frame size.
  std::size_t read_buffer_cap = FrameAssembler::kDefaultBufferCap;
  /// Caps the outbound bytes queued for a peer that reads slower than the
  /// server writes. At the cap the session stops queuing and drains to a
  /// graceful close — queued memory per session is bounded by construction.
  std::size_t write_buffer_cap = 256 * 1024;
  /// Inbound silence (ms) before the session probes with an ECHO request.
  /// 0 disables liveness probing.
  std::uint64_t echo_interval_ms = 5000;
  /// Grace (ms) for any inbound byte after a probe before the session is
  /// declared dead and closed.
  std::uint64_t echo_timeout_ms = 2000;
  /// Close (after the ERROR reply) on any malformed frame instead of
  /// tolerating it. Framing-desync errors always close regardless.
  bool close_on_malformed = false;
  /// Flow-mods accumulated before the sink is forced mid-feed: bounds the
  /// latency between a mod arriving and it being published.
  std::size_t max_mods_per_batch = 256;
  /// Grace (ms) for a draining session to flush its queued output before it
  /// is closed regardless — a stalled peer cannot park a drain forever.
  std::uint64_t drain_timeout_ms = 5000;
  /// Caps the accumulated resync digest entries across chunks; a controller
  /// streaming endless not-done chunks is a protocol error, not a memory
  /// leak.
  std::size_t resync_digest_cap = 1 << 20;
};

/// Why a session ended (for stats and tests).
enum class CloseReason : std::uint8_t {
  kNone = 0,
  kPeerClosed,     ///< orderly EOF from the controller
  kHandshakeFailed,///< first frame was not a valid HELLO
  kProtocolError,  ///< framing desync / malformed with close_on_malformed
  kReadOverflow,   ///< reassembly buffer cap exceeded
  kBackpressure,   ///< write buffer cap exceeded (slow reader)
  kEchoTimeout,    ///< liveness probe unanswered
  kServerShutdown,
  kOverload,       ///< rejection budget exhausted under admission control
};

[[nodiscard]] const char* to_string(CloseReason reason);

/// One decoded flow-mod awaiting application, with the xid needed to address
/// an ERROR reply back at the requesting message.
struct PendingFlowMod {
  std::uint32_t xid = 0;
  FlowModMsg mod;
};

/// Applies one batch of flow-mods (ideally as ONE left-right publish) and
/// writes a per-mod result: ErrorCode::kNone on success, the failure code
/// otherwise. Called on the event-loop thread, in frame order: the session
/// flushes the batch before answering any later non-flow-mod message, so an
/// ECHO reply is a barrier — it proves every earlier mod was applied.
using FlowModSink =
    std::function<void(std::span<const PendingFlowMod>, std::span<ErrorCode>)>;

class Session {
 public:
  enum class State : std::uint8_t {
    kAwaitHello,  ///< our HELLO is queued; peer's must arrive first
    kSteady,
    kDraining,  ///< no new work; flush pending output, then close
    kClosed,
  };

  /// Counters the server aggregates (monotonic, single-threaded).
  struct Counters {
    std::uint64_t frames_rx = 0;
    std::uint64_t frames_tx = 0;
    std::uint64_t flow_mods_ok = 0;
    std::uint64_t flow_mods_failed = 0;
    std::uint64_t flow_mods_shed = 0;  ///< rejected by admission control
    std::uint64_t malformed_frames = 0;
    std::uint64_t echo_probes = 0;
    std::uint64_t role_changes = 0;  ///< accepted mutating role requests
    std::uint64_t resyncs = 0;       ///< completed resync diffs
  };

  /// Standalone session owning a private ControlPlane — the sans-io unit
  /// test shape, and correct for single-session embedders.
  Session(std::uint64_t id, SessionConfig config, FlowModSink sink,
          std::uint64_t now_ms);

  /// Session sharing a server-owned ControlPlane with its sibling sessions
  /// (role arbitration and the flow journal are per-switch, not
  /// per-session). `control` must outlive the session.
  Session(std::uint64_t id, SessionConfig config, FlowModSink sink,
          ControlPlane& control, std::uint64_t now_ms);

  /// Raw bytes off the wire. Decodes every complete frame, queues replies,
  /// funnels flow-mod batches through the sink. Never throws on input.
  void on_bytes(std::span<const std::uint8_t> bytes, std::uint64_t now_ms);

  /// Orderly EOF from the peer: flush whatever output is queued, then close.
  void on_peer_closed(std::uint64_t now_ms);

  /// Clock tick: fires ECHO probes and liveness deadlines. The server calls
  /// this when next_deadline_ms() elapses (and harmlessly any time).
  void on_tick(std::uint64_t now_ms);

  /// Earliest future instant at which on_tick has work, if any.
  [[nodiscard]] std::optional<std::uint64_t> next_deadline_ms() const;

  /// Queue one server-initiated frame (ECHO probe, notification fan-out).
  /// Applies the same backpressure cap as replies.
  void send(std::span<const std::uint8_t> frame, std::uint64_t now_ms);

  /// Queue an unsolicited ROLE_REPLY (xid 0) notifying the peer its role
  /// changed without a request — failover promotion.
  void notify_role(Role role, std::uint64_t generation_id,
                   std::uint64_t now_ms);

  /// This session's current controller role.
  [[nodiscard]] Role role() const { return control_->roles.role_of(id_); }

  /// --- transport side ---
  [[nodiscard]] std::span<const std::uint8_t> pending_output() const;
  void consume_output(std::size_t n);
  /// True once the transport should close the socket: the session is
  /// draining with nothing left to flush, or hard-closed.
  [[nodiscard]] bool wants_close() const;
  /// Transport confirms the socket is gone.
  void mark_closed() { state_ = State::kClosed; }

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] CloseReason close_reason() const { return close_reason_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] std::size_t output_buffered() const {
    return out_.size() - out_head_;
  }

 private:
  void handle_frame(const std::vector<std::uint8_t>& frame,
                    std::uint64_t now_ms);
  void handle_message(const Envelope& envelope,
                      const std::vector<std::uint8_t>& frame,
                      std::uint64_t now_ms);
  /// Push one batch through the sink and queue ERROR replies for failures.
  void flush_mods(std::uint64_t now_ms);
  void handle_role_request(const Envelope& envelope, std::uint64_t now_ms);
  void handle_resync_request(const Envelope& envelope, std::uint64_t now_ms);
  /// Finish an accumulated digest: diff, GC stale entries through the sink,
  /// queue the (chunked) RESYNC_REPLY.
  void finish_resync(std::uint32_t xid, std::uint64_t now_ms);
  /// Queue an encoded frame; on cap overflow switches to backpressure drain.
  void queue_output(std::vector<std::uint8_t> frame, std::uint64_t now_ms);
  void begin_drain(CloseReason reason, std::uint64_t now_ms);

  std::uint64_t id_;
  SessionConfig config_;
  FlowModSink sink_;
  // Heap-owned (when standalone) so moving the Session keeps control_ valid.
  std::unique_ptr<ControlPlane> owned_control_;
  ControlPlane* control_;
  State state_ = State::kAwaitHello;
  CloseReason close_reason_ = CloseReason::kNone;

  FrameAssembler assembler_;
  std::vector<std::uint8_t> frame_;  // reused pop buffer

  std::vector<std::uint8_t> out_;  // queued output, consumed from out_head_
  std::size_t out_head_ = 0;

  std::vector<PendingFlowMod> mods_;     // batch awaiting the sink
  std::vector<ErrorCode> mod_results_;   // sink scratch, reused

  std::vector<ResyncEntry> resync_digest_;  // accumulated across chunks
  bool resync_open_ = false;

  std::uint64_t last_rx_ms_ = 0;
  std::optional<std::uint64_t> probe_deadline_ms_;  // set while a probe is out
  std::optional<std::uint64_t> drain_deadline_ms_;  // set while kDraining
  std::uint32_t next_xid_ = 1;

  Counters counters_;
};

}  // namespace ofmtl::ofp::server
