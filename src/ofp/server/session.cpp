#include "ofp/server/session.hpp"

#include "net/packet.hpp"
#include "obs/tracer.hpp"

namespace ofmtl::ofp::server {

const char* to_string(CloseReason reason) {
  switch (reason) {
    case CloseReason::kNone: return "none";
    case CloseReason::kPeerClosed: return "peer-closed";
    case CloseReason::kHandshakeFailed: return "handshake-failed";
    case CloseReason::kProtocolError: return "protocol-error";
    case CloseReason::kReadOverflow: return "read-overflow";
    case CloseReason::kBackpressure: return "backpressure";
    case CloseReason::kEchoTimeout: return "echo-timeout";
    case CloseReason::kServerShutdown: return "server-shutdown";
    case CloseReason::kOverload: return "overload";
  }
  return "unknown";
}

namespace {

/// kOverload ERROR data payload: a big-endian u16 backoff hint in ms.
std::vector<std::uint8_t> backoff_hint_bytes(std::uint16_t backoff_ms) {
  return {static_cast<std::uint8_t>(backoff_ms >> 8),
          static_cast<std::uint8_t>(backoff_ms)};
}

}  // namespace

Session::Session(std::uint64_t id, SessionConfig config, FlowModSink sink,
                 std::uint64_t now_ms)
    : id_(id),
      config_(config),
      sink_(std::move(sink)),
      owned_control_(std::make_unique<ControlPlane>()),
      control_(owned_control_.get()),
      assembler_(config.read_buffer_cap),
      last_rx_ms_(now_ms) {
  control_->roles.on_session_open(id_);
  // Both sides open with HELLO; ours goes out immediately.
  queue_output(encode({next_xid_++, Hello{}}), now_ms);
}

Session::Session(std::uint64_t id, SessionConfig config, FlowModSink sink,
                 ControlPlane& control, std::uint64_t now_ms)
    : id_(id),
      config_(config),
      sink_(std::move(sink)),
      control_(&control),
      assembler_(config.read_buffer_cap),
      last_rx_ms_(now_ms) {
  control_->roles.on_session_open(id_);
  queue_output(encode({next_xid_++, Hello{}}), now_ms);
}

void Session::on_bytes(std::span<const std::uint8_t> bytes,
                       std::uint64_t now_ms) {
  if (state_ == State::kDraining || state_ == State::kClosed) return;
  // Ingest slice: everything this read round triggered (framing, decode,
  // apply, replies) nests inside it on the timeline.
  OFMTL_OBS_EMIT(obs::TraceEvent::kOfpReadBegin, id_, bytes.size());
  // Any inbound byte proves the peer alive: clear an outstanding probe and
  // restart the idle clock.
  last_rx_ms_ = now_ms;
  probe_deadline_ms_.reset();

  const auto push_status = assembler_.push(bytes);
  // Drain the frames that completed (even when the push poisoned the
  // stream: frames before the poison point are intact and must count).
  while (state_ != State::kDraining && assembler_.next(frame_)) {
    handle_frame(frame_, now_ms);
  }
  if (state_ == State::kDraining || state_ == State::kClosed) {
    mods_.clear();
    OFMTL_OBS_EMIT(obs::TraceEvent::kOfpReadEnd, id_, bytes.size());
    return;
  }
  flush_mods(now_ms);
  if (push_status == FrameAssembler::Status::kOverflow ||
      assembler_.status() == FrameAssembler::Status::kOverflow) {
    begin_drain(CloseReason::kReadOverflow, now_ms);
  } else if (assembler_.status() == FrameAssembler::Status::kBadLength) {
    // Framing sync is unrecoverable: one best-effort ERROR, then close.
    counters_.malformed_frames++;
    queue_output(encode_error(0, ErrorType::kBadRequest, ErrorCode::kBadLength),
                 now_ms);
    begin_drain(CloseReason::kProtocolError, now_ms);
  }
  OFMTL_OBS_EMIT(obs::TraceEvent::kOfpReadEnd, id_, bytes.size());
}

void Session::handle_frame(const std::vector<std::uint8_t>& frame,
                           std::uint64_t now_ms) {
  counters_.frames_rx++;
  Envelope envelope;
  OFMTL_OBS_EMIT(obs::TraceEvent::kOfpDecodeBegin, id_, frame.size());
  const auto status = try_decode(frame, envelope);
  OFMTL_OBS_EMIT(obs::TraceEvent::kOfpDecodeEnd, id_,
                 (static_cast<std::uint64_t>(status) << 32) | frame.size());
  if (status != DecodeStatus::kOk) {
    counters_.malformed_frames++;
    if (state_ == State::kAwaitHello) {
      queue_output(encode_error(peek_xid(frame), ErrorType::kHelloFailed,
                                error_code_for(status), frame),
                   now_ms);
      begin_drain(CloseReason::kHandshakeFailed, now_ms);
      return;
    }
    // A malformed body still answers in frame order: flush pending mods so
    // the ERROR cannot overtake them.
    flush_mods(now_ms);
    queue_output(encode_error(peek_xid(frame), ErrorType::kBadRequest,
                              error_code_for(status), frame),
                 now_ms);
    if (config_.close_on_malformed) {
      begin_drain(CloseReason::kProtocolError, now_ms);
    }
    return;
  }
  handle_message(envelope, frame, now_ms);
}

void Session::handle_message(const Envelope& envelope,
                             const std::vector<std::uint8_t>& frame,
                             std::uint64_t now_ms) {
  if (state_ == State::kAwaitHello) {
    if (!std::holds_alternative<Hello>(envelope.message)) {
      queue_output(encode_error(envelope.xid, ErrorType::kHelloFailed,
                                ErrorCode::kBadType, frame),
                   now_ms);
      begin_drain(CloseReason::kHandshakeFailed, now_ms);
      return;
    }
    state_ = State::kSteady;
    return;
  }

  if (const auto* mod = std::get_if<FlowModMsg>(&envelope.message)) {
    if (role() == Role::kSlave) {
      // Slaves are read-only (OF1.3): answer in frame order — flush the
      // batch so this ERROR cannot overtake earlier mods' replies.
      flush_mods(now_ms);
      counters_.flow_mods_failed++;
      queue_output(encode_error(envelope.xid, ErrorType::kFlowModFailed,
                                ErrorCode::kIsSlave, frame),
                   now_ms);
      return;
    }
    mods_.push_back({envelope.xid, *mod});
    if (mods_.size() >= config_.max_mods_per_batch) flush_mods(now_ms);
    return;
  }
  // Every non-flow-mod message is a barrier: earlier mods must be applied
  // (and their errors queued) before this message's reply goes out.
  flush_mods(now_ms);

  if (std::holds_alternative<RoleRequestMsg>(envelope.message)) {
    handle_role_request(envelope, now_ms);
    return;
  }
  if (std::holds_alternative<ResyncRequestMsg>(envelope.message)) {
    handle_resync_request(envelope, now_ms);
    return;
  }

  if (const auto* echo = std::get_if<EchoRequest>(&envelope.message)) {
    // Barrier slice: the echo reply queues only after flush_mods above
    // published every earlier flow-mod, so this duration is the
    // controller-visible barrier turnaround inside the server.
    OFMTL_OBS_EMIT(obs::TraceEvent::kOfpBarrierBegin, id_,
                   echo->payload.size());
    queue_output(encode({envelope.xid, EchoReply{echo->payload}}), now_ms);
    OFMTL_OBS_EMIT(obs::TraceEvent::kOfpBarrierEnd, id_,
                   echo->payload.size());
    return;
  }
  if (std::holds_alternative<EchoReply>(envelope.message)) {
    return;  // liveness bookkeeping already done in on_bytes
  }
  if (std::holds_alternative<Hello>(envelope.message)) {
    return;  // redundant HELLO: harmless
  }
  if (const auto* out = std::get_if<PacketOut>(&envelope.message)) {
    PacketHeader header;
    if (!parse_packet_header(out->frame, out->in_port, header)) {
      queue_output(encode_error(envelope.xid, ErrorType::kBadRequest,
                                ErrorCode::kBadValue, frame),
                   now_ms);
    }
    return;
  }
  // Switch->controller types on the inbound path: protocol violation.
  queue_output(encode_error(envelope.xid, ErrorType::kBadRequest,
                            ErrorCode::kBadType, frame),
               now_ms);
}

void Session::handle_role_request(const Envelope& envelope,
                                  std::uint64_t now_ms) {
  const auto& request = std::get<RoleRequestMsg>(envelope.message);
  const auto decision = control_->roles.apply(id_, request);
  if (!decision.accepted) {
    queue_output(encode_error(envelope.xid, ErrorType::kRoleRequestFailed,
                              decision.error),
                 now_ms);
    return;
  }
  if (request.role != Role::kNoChange) counters_.role_changes++;
  queue_output(
      encode({envelope.xid, RoleReplyMsg{decision.role, decision.generation_id}}),
      now_ms);
}

void Session::handle_resync_request(const Envelope& envelope,
                                    std::uint64_t now_ms) {
  if (role() == Role::kSlave) {
    queue_output(encode_error(envelope.xid, ErrorType::kBadRequest,
                              ErrorCode::kIsSlave),
                 now_ms);
    return;
  }
  const auto& request = std::get<ResyncRequestMsg>(envelope.message);
  if (resync_digest_.size() + request.entries.size() >
      config_.resync_digest_cap) {
    // A digest that cannot fit is a protocol violation, not a memory leak.
    resync_digest_.clear();
    resync_open_ = false;
    queue_output(encode_error(envelope.xid, ErrorType::kBadRequest,
                              ErrorCode::kBufferOverflow),
                 now_ms);
    begin_drain(CloseReason::kProtocolError, now_ms);
    return;
  }
  resync_digest_.insert(resync_digest_.end(), request.entries.begin(),
                        request.entries.end());
  resync_open_ = true;
  if (request.done) finish_resync(envelope.xid, now_ms);
}

void Session::finish_resync(std::uint32_t xid, std::uint64_t now_ms) {
  const auto outcome = compute_resync(control_->journal, resync_digest_);
  resync_digest_.clear();
  resync_open_ = false;
  counters_.resyncs++;

  // GC stale entries through the ordinary sink path: one batch, one
  // left-right publish. kUnknownEntry from the sink means the table already
  // lacked the entry; erasing the journal record converges either way.
  if (!outcome.deletes.empty()) {
    std::vector<PendingFlowMod> deletes;
    deletes.reserve(outcome.deletes.size());
    for (const auto& del : outcome.deletes) deletes.push_back({xid, del});
    mod_results_.assign(deletes.size(), ErrorCode::kNone);
    sink_(deletes, mod_results_);
    for (const auto& del : outcome.deletes) control_->journal.record(del);
  }

  // Chunked reply under the 64 KiB frame cap; `deleted` rides the final
  // chunk (the one marked done).
  constexpr std::size_t kReplyChunk = 1024;
  std::size_t offset = 0;
  do {
    const auto take = std::min(kReplyChunk, outcome.missing.size() - offset);
    ResyncReplyMsg reply;
    reply.missing.assign(
        outcome.missing.begin() + static_cast<long>(offset),
        outcome.missing.begin() + static_cast<long>(offset + take));
    offset += take;
    reply.done = offset == outcome.missing.size();
    reply.deleted =
        reply.done ? static_cast<std::uint32_t>(outcome.deletes.size()) : 0;
    queue_output(encode({xid, std::move(reply)}), now_ms);
  } while (offset < outcome.missing.size() && state_ == State::kSteady);
}

void Session::flush_mods(std::uint64_t now_ms) {
  if (mods_.empty()) return;
  const bool is_master = role() == Role::kMaster;
  const auto verdict =
      control_->admission.admit(id_, is_master, mods_.size(), now_ms);
  if (!verdict.admit) {
    // Shed the whole batch: every xid still gets an answer — an ERROR with
    // a backoff hint — so the controller can retry after the hint, and a
    // controller that never backs off exhausts its rejection budget and is
    // drained (bounded retry).
    counters_.flow_mods_shed += mods_.size();
    const auto hint = backoff_hint_bytes(verdict.backoff_hint_ms);
    for (const auto& mod : mods_) {
      queue_output(encode_error(mod.xid, ErrorType::kFlowModFailed,
                                ErrorCode::kOverload, hint),
                   now_ms);
      if (state_ != State::kSteady) break;  // backpressure drain kicked in
    }
    mods_.clear();
    if (verdict.drain) begin_drain(CloseReason::kOverload, now_ms);
    return;
  }
  mod_results_.assign(mods_.size(), ErrorCode::kNone);
  OFMTL_OBS_EMIT(obs::TraceEvent::kOfpApplyBegin, id_, mods_.size());
  sink_(mods_, mod_results_);
  OFMTL_OBS_EMIT(obs::TraceEvent::kOfpApplyEnd, id_, mods_.size());
  for (std::size_t i = 0; i < mods_.size(); ++i) {
    if (mod_results_[i] == ErrorCode::kNone) {
      counters_.flow_mods_ok++;
      control_->journal.record(mods_[i].mod);
      continue;
    }
    counters_.flow_mods_failed++;
    queue_output(encode_error(mods_[i].xid, ErrorType::kFlowModFailed,
                              mod_results_[i]),
                 now_ms);
    if (state_ != State::kSteady) break;  // backpressure drain kicked in
  }
  mods_.clear();
}

void Session::queue_output(std::vector<std::uint8_t> frame,
                           std::uint64_t now_ms) {
  if (state_ == State::kDraining || state_ == State::kClosed) return;
  if (output_buffered() + frame.size() > config_.write_buffer_cap) {
    // Slow reader at the cap: stop queuing (this frame is dropped along
    // with everything after it) and drain what the peer already earned.
    begin_drain(CloseReason::kBackpressure, now_ms);
    return;
  }
  if (out_head_ > 0 && out_head_ >= out_.size() / 2) {
    out_.erase(out_.begin(), out_.begin() + static_cast<long>(out_head_));
    out_head_ = 0;
  }
  out_.insert(out_.end(), frame.begin(), frame.end());
  counters_.frames_tx++;
}

void Session::begin_drain(CloseReason reason, std::uint64_t now_ms) {
  if (state_ == State::kDraining || state_ == State::kClosed) return;
  state_ = State::kDraining;
  close_reason_ = reason;
  probe_deadline_ms_.reset();
  // Bound the drain: a peer that never reads its flushed output cannot park
  // the session (and its buffers) forever.
  drain_deadline_ms_ = now_ms + config_.drain_timeout_ms;
  mods_.clear();
}

void Session::on_peer_closed(std::uint64_t now_ms) {
  flush_mods(now_ms);
  begin_drain(CloseReason::kPeerClosed, now_ms);
}

void Session::on_tick(std::uint64_t now_ms) {
  if (state_ == State::kDraining) {
    if (drain_deadline_ms_ && now_ms >= *drain_deadline_ms_) {
      state_ = State::kClosed;  // undelivered output is forfeit
    }
    return;
  }
  if (state_ != State::kSteady && state_ != State::kAwaitHello) return;
  if (config_.echo_interval_ms == 0) return;
  if (probe_deadline_ms_.has_value()) {
    if (now_ms >= *probe_deadline_ms_) {
      begin_drain(CloseReason::kEchoTimeout, now_ms);
    }
    return;
  }
  if (now_ms - last_rx_ms_ >= config_.echo_interval_ms) {
    counters_.echo_probes++;
    queue_output(encode({next_xid_++, EchoRequest{}}), now_ms);
    probe_deadline_ms_ = now_ms + config_.echo_timeout_ms;
  }
}

std::optional<std::uint64_t> Session::next_deadline_ms() const {
  if (state_ == State::kDraining) return drain_deadline_ms_;
  if (state_ != State::kSteady && state_ != State::kAwaitHello) {
    return std::nullopt;
  }
  if (config_.echo_interval_ms == 0) return std::nullopt;
  if (probe_deadline_ms_.has_value()) return probe_deadline_ms_;
  return last_rx_ms_ + config_.echo_interval_ms;
}

void Session::send(std::span<const std::uint8_t> frame, std::uint64_t now_ms) {
  queue_output(std::vector<std::uint8_t>(frame.begin(), frame.end()), now_ms);
}

void Session::notify_role(Role new_role, std::uint64_t generation_id,
                          std::uint64_t now_ms) {
  if (state_ != State::kSteady) return;
  counters_.role_changes++;
  queue_output(encode({0, RoleReplyMsg{new_role, generation_id}}), now_ms);
}

std::span<const std::uint8_t> Session::pending_output() const {
  return std::span<const std::uint8_t>{out_}.subspan(out_head_);
}

void Session::consume_output(std::size_t n) {
  out_head_ += n;
  if (out_head_ >= out_.size()) {
    out_.clear();
    out_head_ = 0;
  }
}

bool Session::wants_close() const {
  return state_ == State::kClosed ||
         (state_ == State::kDraining && output_buffered() == 0);
}

}  // namespace ofmtl::ofp::server
