#include "ofp/messages.hpp"

#include <algorithm>
#include <stdexcept>

namespace ofmtl::ofp {

namespace {

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void u128(const U128& v) {
    u64(v.hi);
    u64(v.lo);
  }
  void bytes(const std::vector<std::uint8_t>& data) {
    u16(static_cast<std::uint16_t>(data.size()));
    out_.insert(out_.end(), data.begin(), data.end());
  }

 private:
  std::vector<std::uint8_t>& out_;
};

// Non-throwing cursor over one frame: an out-of-bounds read or a
// field-level violation sets a sticky status (and yields zeros) instead of
// throwing, so the server can decode hostile bytes without exceptions
// crossing its event loop. First failure wins; composite readers bail out
// early on !ok().
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes, std::size_t offset)
      : bytes_(bytes), pos_(offset) {}
  std::uint8_t u8() {
    if (!require(1)) return 0;
    return bytes_[pos_++];
  }
  std::uint16_t u16() {
    const auto hi = u8();
    return static_cast<std::uint16_t>(hi << 8 | u8());
  }
  std::uint32_t u32() {
    const auto hi = u16();
    return std::uint32_t{hi} << 16 | u16();
  }
  std::uint64_t u64() {
    const auto hi = u32();
    return std::uint64_t{hi} << 32 | u32();
  }
  U128 u128() {
    const auto hi = u64();
    return {hi, u64()};
  }
  std::vector<std::uint8_t> bytes() {
    const auto count = u16();
    if (!require(count)) return {};
    std::vector<std::uint8_t> data(
        bytes_.begin() + static_cast<long>(pos_),
        bytes_.begin() + static_cast<long>(pos_ + count));
    pos_ += count;
    return data;
  }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool ok() const { return status_ == DecodeStatus::kOk; }
  [[nodiscard]] DecodeStatus status() const { return status_; }
  /// Record a field-level violation (bad tag, bad prefix, ...). Truncation
  /// already recorded takes precedence: the value was garbage to begin with.
  void fail(DecodeStatus status) {
    if (status_ == DecodeStatus::kOk) status_ = status;
  }

 private:
  bool require(std::size_t n) {
    if (n > bytes_.size() - pos_) {  // pos_ <= size() always holds
      fail(DecodeStatus::kTruncated);
      return false;
    }
    return true;
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_;
  DecodeStatus status_ = DecodeStatus::kOk;
};

// --- FlowMatch / Action / InstructionSet body encoding ---

void write_field_match(Writer& w, FieldId id, const FieldMatch& fm) {
  w.u8(static_cast<std::uint8_t>(id));
  w.u8(static_cast<std::uint8_t>(fm.kind));
  switch (fm.kind) {
    case MatchKind::kAny:
      break;
    case MatchKind::kExact:
      w.u128(fm.value);
      break;
    case MatchKind::kPrefix:
      w.u128(fm.prefix.value());
      w.u8(static_cast<std::uint8_t>(fm.prefix.length()));
      w.u8(static_cast<std::uint8_t>(fm.prefix.width()));
      break;
    case MatchKind::kRange:
      w.u64(fm.range.lo);
      w.u64(fm.range.hi);
      break;
    case MatchKind::kMasked:
      w.u128(fm.value);
      w.u128(fm.mask);
      break;
  }
}

void write_match(Writer& w, const FlowMatch& match) {
  const auto fields = match.constrained_fields();
  w.u8(static_cast<std::uint8_t>(fields.size()));
  for (const auto id : fields) write_field_match(w, id, match.get(id));
}

FlowMatch read_match(Reader& r) {
  FlowMatch match;
  const auto count = r.u8();
  for (unsigned i = 0; i < count && r.ok(); ++i) {
    const auto id = static_cast<FieldId>(r.u8());
    if (static_cast<std::size_t>(id) >= kFieldCount) {
      r.fail(DecodeStatus::kBadValue);
      return match;
    }
    const auto kind = static_cast<MatchKind>(r.u8());
    switch (kind) {
      case MatchKind::kAny:
        break;
      case MatchKind::kExact:
        match.set(id, FieldMatch::exact(r.u128()));
        break;
      case MatchKind::kPrefix: {
        const U128 value = r.u128();
        const unsigned length = r.u8();
        const unsigned width = r.u8();
        if (!r.ok()) return match;
        if (width == 0 || width > 128 || length > width) {
          r.fail(DecodeStatus::kBadValue);
          return match;
        }
        match.set(id, FieldMatch::of_prefix(Prefix{value, length, width}));
        break;
      }
      case MatchKind::kRange: {
        const auto lo = r.u64();
        const auto hi = r.u64();
        if (!r.ok()) return match;
        if (lo > hi) {
          r.fail(DecodeStatus::kBadValue);
          return match;
        }
        match.set(id, FieldMatch::of_range(lo, hi));
        break;
      }
      case MatchKind::kMasked: {
        const U128 value = r.u128();
        const U128 mask = r.u128();
        match.set(id, FieldMatch::masked(value, mask));
        break;
      }
      default:
        r.fail(DecodeStatus::kBadValue);
        return match;
    }
  }
  return match;
}

void write_action(Writer& w, const Action& action) {
  if (const auto* out = std::get_if<OutputAction>(&action)) {
    w.u8(0);
    w.u32(out->port);
  } else if (const auto* set = std::get_if<SetFieldAction>(&action)) {
    w.u8(1);
    w.u8(static_cast<std::uint8_t>(set->field));
    w.u128(set->value);
  } else if (const auto* push = std::get_if<PushVlanAction>(&action)) {
    w.u8(2);
    w.u16(push->vlan_id);
  } else if (std::holds_alternative<PopVlanAction>(action)) {
    w.u8(3);
  } else if (const auto* group = std::get_if<GroupAction>(&action)) {
    w.u8(5);
    w.u32(group->group_id);
  } else {
    w.u8(4);  // drop
  }
}

Action read_action(Reader& r) {
  switch (r.u8()) {
    case 0:
      return OutputAction{r.u32()};
    case 1: {
      const auto field = static_cast<FieldId>(r.u8());
      if (static_cast<std::size_t>(field) >= kFieldCount) {
        r.fail(DecodeStatus::kBadValue);
        return DropAction{};
      }
      return SetFieldAction{field, r.u128()};
    }
    case 2:
      return PushVlanAction{r.u16()};
    case 3:
      return PopVlanAction{};
    case 4:
      return DropAction{};
    case 5:
      return GroupAction{r.u32()};
    default:
      r.fail(DecodeStatus::kBadValue);  // no-op when truncation already won
      return DropAction{};
  }
}

void write_actions(Writer& w, const std::vector<Action>& actions) {
  w.u8(static_cast<std::uint8_t>(actions.size()));
  for (const auto& action : actions) write_action(w, action);
}

std::vector<Action> read_actions(Reader& r) {
  std::vector<Action> actions;
  const auto count = r.u8();
  actions.reserve(count);
  for (unsigned i = 0; i < count && r.ok(); ++i) {
    actions.push_back(read_action(r));
  }
  return actions;
}

void write_instructions(Writer& w, const InstructionSet& ins) {
  std::uint8_t flags = 0;
  if (ins.goto_table) flags |= 1;
  if (ins.write_metadata) flags |= 2;
  if (ins.clear_actions) flags |= 4;
  w.u8(flags);
  if (ins.goto_table) w.u8(*ins.goto_table);
  if (ins.write_metadata) {
    w.u64(ins.write_metadata->value);
    w.u64(ins.write_metadata->mask);
  }
  write_actions(w, ins.write_actions);
  write_actions(w, ins.apply_actions);
}

InstructionSet read_instructions(Reader& r) {
  InstructionSet ins;
  const auto flags = r.u8();
  if (flags & 1) ins.goto_table = r.u8();
  if (flags & 2) ins.write_metadata = MetadataWrite{r.u64(), r.u64()};
  ins.clear_actions = (flags & 4) != 0;
  ins.write_actions = read_actions(r);
  ins.apply_actions = read_actions(r);
  return ins;
}

// --- role / resync body encoding ---

void write_resync_entries(Writer& w, const std::vector<ResyncEntry>& entries) {
  w.u16(static_cast<std::uint16_t>(entries.size()));
  for (const auto& entry : entries) {
    w.u8(entry.table_id);
    w.u32(entry.entry_id);
    w.u64(entry.cookie);
  }
}

std::vector<ResyncEntry> read_resync_entries(Reader& r) {
  std::vector<ResyncEntry> entries;
  const auto count = r.u16();
  for (unsigned i = 0; i < count && r.ok(); ++i) {
    ResyncEntry entry;
    entry.table_id = r.u8();
    entry.entry_id = r.u32();
    entry.cookie = r.u64();
    if (r.ok()) entries.push_back(entry);
  }
  return entries;
}

/// Read a strict boolean byte: 2..255 is a field violation, not a truthy
/// value, so every decodable frame re-encodes to identical bytes.
bool read_bool(Reader& r) {
  const auto v = r.u8();
  if (v > 1) r.fail(DecodeStatus::kBadValue);
  return v == 1;
}

Role read_role(Reader& r) {
  const auto v = r.u8();
  if (r.ok() && v > static_cast<std::uint8_t>(Role::kSlave)) {
    r.fail(DecodeStatus::kBadValue);
    return Role::kNoChange;
  }
  return static_cast<Role>(v);
}

[[nodiscard]] MsgType type_of(const Message& message) {
  if (std::holds_alternative<Hello>(message)) return MsgType::kHello;
  if (std::holds_alternative<ErrorMsg>(message)) return MsgType::kError;
  if (std::holds_alternative<EchoRequest>(message)) return MsgType::kEchoRequest;
  if (std::holds_alternative<EchoReply>(message)) return MsgType::kEchoReply;
  if (std::holds_alternative<PacketIn>(message)) return MsgType::kPacketIn;
  if (std::holds_alternative<PacketOut>(message)) return MsgType::kPacketOut;
  if (std::holds_alternative<FlowRemovedMsg>(message)) {
    return MsgType::kFlowRemoved;
  }
  if (std::holds_alternative<RoleRequestMsg>(message)) {
    return MsgType::kRoleRequest;
  }
  if (std::holds_alternative<RoleReplyMsg>(message)) return MsgType::kRoleReply;
  if (std::holds_alternative<ResyncRequestMsg>(message)) {
    return MsgType::kResyncRequest;
  }
  if (std::holds_alternative<ResyncReplyMsg>(message)) {
    return MsgType::kResyncReply;
  }
  return MsgType::kFlowMod;
}

}  // namespace

std::string to_string(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "HELLO";
    case MsgType::kError: return "ERROR";
    case MsgType::kEchoRequest: return "ECHO_REQUEST";
    case MsgType::kEchoReply: return "ECHO_REPLY";
    case MsgType::kPacketIn: return "PACKET_IN";
    case MsgType::kFlowRemoved: return "FLOW_REMOVED";
    case MsgType::kPacketOut: return "PACKET_OUT";
    case MsgType::kFlowMod: return "FLOW_MOD";
    case MsgType::kRoleRequest: return "ROLE_REQUEST";
    case MsgType::kRoleReply: return "ROLE_REPLY";
    case MsgType::kResyncRequest: return "RESYNC_REQUEST";
    case MsgType::kResyncReply: return "RESYNC_REPLY";
  }
  return "UNKNOWN";
}

std::string to_string(Role role) {
  switch (role) {
    case Role::kNoChange: return "nochange";
    case Role::kEqual: return "equal";
    case Role::kMaster: return "master";
    case Role::kSlave: return "slave";
  }
  return "unknown";
}

std::string to_string(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kBadVersion: return "bad version";
    case DecodeStatus::kBadLength: return "length mismatch";
    case DecodeStatus::kTruncated: return "truncated message";
    case DecodeStatus::kTrailingBytes: return "trailing bytes";
    case DecodeStatus::kBadType: return "unknown message type";
    case DecodeStatus::kBadValue: return "bad field value";
  }
  return "unknown";
}

ErrorCode error_code_for(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return ErrorCode::kNone;
    case DecodeStatus::kBadVersion: return ErrorCode::kBadVersion;
    case DecodeStatus::kBadLength: return ErrorCode::kBadLength;
    case DecodeStatus::kTruncated: return ErrorCode::kTruncated;
    case DecodeStatus::kTrailingBytes: return ErrorCode::kBadLength;
    case DecodeStatus::kBadType: return ErrorCode::kBadType;
    case DecodeStatus::kBadValue: return ErrorCode::kBadValue;
  }
  return ErrorCode::kNone;
}

std::vector<std::uint8_t> encode(const Envelope& envelope) {
  std::vector<std::uint8_t> bytes;
  Writer w{bytes};
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(type_of(envelope.message)));
  w.u16(0);  // length, patched below
  w.u32(envelope.xid);

  std::visit(
      [&w](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, Hello>) {
          // empty body
        } else if constexpr (std::is_same_v<T, ErrorMsg>) {
          w.u16(static_cast<std::uint16_t>(msg.type));
          w.u16(static_cast<std::uint16_t>(msg.code));
          w.bytes(msg.data);
        } else if constexpr (std::is_same_v<T, EchoRequest> ||
                             std::is_same_v<T, EchoReply>) {
          w.bytes(msg.payload);
        } else if constexpr (std::is_same_v<T, PacketIn>) {
          w.u32(msg.buffer_id);
          w.u8(msg.table_id);
          w.u8(static_cast<std::uint8_t>(msg.reason));
          w.u32(msg.in_port);
          w.bytes(msg.frame);
        } else if constexpr (std::is_same_v<T, PacketOut>) {
          w.u32(msg.buffer_id);
          w.u32(msg.in_port);
          write_actions(w, msg.actions);
          w.bytes(msg.frame);
        } else if constexpr (std::is_same_v<T, FlowRemovedMsg>) {
          w.u32(msg.entry_id);
          w.u8(msg.table_id);
          w.u8(static_cast<std::uint8_t>(msg.reason));
          w.u64(msg.packets);
          w.u64(msg.bytes);
        } else if constexpr (std::is_same_v<T, RoleRequestMsg> ||
                             std::is_same_v<T, RoleReplyMsg>) {
          w.u8(static_cast<std::uint8_t>(msg.role));
          w.u64(msg.generation_id);
        } else if constexpr (std::is_same_v<T, ResyncRequestMsg>) {
          w.u8(msg.done ? 1 : 0);
          write_resync_entries(w, msg.entries);
        } else if constexpr (std::is_same_v<T, ResyncReplyMsg>) {
          w.u8(msg.done ? 1 : 0);
          w.u32(msg.deleted);
          write_resync_entries(w, msg.missing);
        } else {  // FlowModMsg
          w.u8(static_cast<std::uint8_t>(msg.command));
          w.u8(msg.table_id);
          w.u64(msg.cookie);
          w.u32(msg.entry.id);
          w.u16(msg.entry.priority);
          w.u16(msg.timeouts.idle_timeout);
          w.u16(msg.timeouts.hard_timeout);
          w.u8(msg.send_flow_removed ? 1 : 0);
          write_match(w, msg.entry.match);
          write_instructions(w, msg.entry.instructions);
        }
      },
      envelope.message);

  if (bytes.size() > 0xFFFF) throw std::invalid_argument("ofp: message too long");
  bytes[2] = static_cast<std::uint8_t>(bytes.size() >> 8);
  bytes[3] = static_cast<std::uint8_t>(bytes.size());
  return bytes;
}

DecodeStatus try_decode(std::span<const std::uint8_t> bytes,
                        Envelope& out) noexcept {
  Reader r{bytes, 0};
  const auto version = r.u8();
  const auto type = static_cast<MsgType>(r.u8());
  const auto length = r.u16();
  if (!r.ok()) return r.status();  // shorter than the fixed header
  if (version != kProtocolVersion) return DecodeStatus::kBadVersion;
  if (length != bytes.size()) return DecodeStatus::kBadLength;
  out.xid = r.u32();
  switch (type) {
    case MsgType::kHello:
      out.message = Hello{};
      break;
    case MsgType::kError: {
      ErrorMsg msg;
      msg.type = static_cast<ErrorType>(r.u16());
      msg.code = static_cast<ErrorCode>(r.u16());
      msg.data = r.bytes();
      out.message = std::move(msg);
      break;
    }
    case MsgType::kEchoRequest:
      out.message = EchoRequest{r.bytes()};
      break;
    case MsgType::kEchoReply:
      out.message = EchoReply{r.bytes()};
      break;
    case MsgType::kPacketIn: {
      PacketIn msg;
      msg.buffer_id = r.u32();
      msg.table_id = r.u8();
      msg.reason = static_cast<PacketInReason>(r.u8());
      msg.in_port = r.u32();
      msg.frame = r.bytes();
      out.message = std::move(msg);
      break;
    }
    case MsgType::kPacketOut: {
      PacketOut msg;
      msg.buffer_id = r.u32();
      msg.in_port = r.u32();
      msg.actions = read_actions(r);
      msg.frame = r.bytes();
      out.message = std::move(msg);
      break;
    }
    case MsgType::kFlowRemoved: {
      FlowRemovedMsg msg;
      msg.entry_id = r.u32();
      msg.table_id = r.u8();
      msg.reason = static_cast<FlowRemovedReason>(r.u8());
      msg.packets = r.u64();
      msg.bytes = r.u64();
      out.message = msg;
      break;
    }
    case MsgType::kFlowMod: {
      FlowModMsg msg;
      msg.command = static_cast<FlowModCommand>(r.u8());
      if (r.ok() && msg.command != FlowModCommand::kAdd &&
          msg.command != FlowModCommand::kModify &&
          msg.command != FlowModCommand::kDelete) {
        return DecodeStatus::kBadValue;
      }
      msg.table_id = r.u8();
      msg.cookie = r.u64();
      msg.entry.id = r.u32();
      msg.entry.priority = r.u16();
      msg.timeouts.idle_timeout = r.u16();
      msg.timeouts.hard_timeout = r.u16();
      msg.send_flow_removed = r.u8() != 0;
      msg.entry.match = read_match(r);
      if (r.ok()) msg.entry.instructions = read_instructions(r);
      out.message = std::move(msg);
      break;
    }
    case MsgType::kRoleRequest: {
      RoleRequestMsg msg;
      msg.role = read_role(r);
      msg.generation_id = r.u64();
      out.message = msg;
      break;
    }
    case MsgType::kRoleReply: {
      RoleReplyMsg msg;
      msg.role = read_role(r);
      msg.generation_id = r.u64();
      out.message = msg;
      break;
    }
    case MsgType::kResyncRequest: {
      ResyncRequestMsg msg;
      msg.done = read_bool(r);
      msg.entries = read_resync_entries(r);
      out.message = std::move(msg);
      break;
    }
    case MsgType::kResyncReply: {
      ResyncReplyMsg msg;
      msg.done = read_bool(r);
      msg.deleted = r.u32();
      msg.missing = read_resync_entries(r);
      out.message = std::move(msg);
      break;
    }
    default:
      return DecodeStatus::kBadType;
  }
  if (!r.ok()) return r.status();
  if (r.position() != bytes.size()) return DecodeStatus::kTrailingBytes;
  return DecodeStatus::kOk;
}

std::vector<std::uint8_t> encode_error(std::uint32_t xid, ErrorType type,
                                       ErrorCode code,
                                       std::span<const std::uint8_t> offending) {
  ErrorMsg msg;
  msg.type = type;
  msg.code = code;
  const auto take = std::min(offending.size(), kErrorDataCap);
  msg.data.assign(offending.begin(), offending.begin() + static_cast<long>(take));
  return encode({xid, std::move(msg)});
}

std::uint32_t peek_xid(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) return 0;
  return std::uint32_t{bytes[4]} << 24 | std::uint32_t{bytes[5]} << 16 |
         std::uint32_t{bytes[6]} << 8 | std::uint32_t{bytes[7]};
}

std::optional<std::size_t> peek_frame_length(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4) return std::nullopt;
  return std::size_t{bytes[2]} << 8 | std::size_t{bytes[3]};
}

Envelope decode(const std::vector<std::uint8_t>& bytes) {
  Envelope envelope;
  const auto status = try_decode(bytes, envelope);
  if (status != DecodeStatus::kOk) {
    throw std::invalid_argument("ofp: " + to_string(status));
  }
  return envelope;
}

}  // namespace ofmtl::ofp
