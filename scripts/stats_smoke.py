#!/usr/bin/env python3
"""Smoke-test the live stats endpoint end to end.

Spawns `ofp_soak` with an ephemeral stats port, parses the STATS_PORT=<n>
announcement from its stdout, scrapes /metrics (Prometheus text) and
/metrics.json (JSON) over real HTTP while the soak is running or lingering,
and asserts the families the observability plane promises are present and
well-formed. Exits non-zero on any missing family, unparseable exposition,
or soak failure — this is the CI gate that the endpoint actually serves.

Usage: stats_smoke.py path/to/ofp_soak [extra soak args...]
"""
import json
import subprocess
import sys
import time
import urllib.request

REQUIRED_FAMILIES = [
    "ofmtl_ofp_sessions_accepted_total",
    "ofmtl_ofp_handshakes_total",
    "ofmtl_ofp_frames_rx_total",
    "ofmtl_ofp_frames_tx_total",
    "ofmtl_ofp_flow_mods_ok_total",
    "ofmtl_ofp_bytes_rx_total",
    "ofmtl_ofp_active_sessions",
    "ofmtl_ofp_admission_state",
]


def fail(message):
    print(f"stats_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def parse_prometheus(text):
    """Minimal exposition-format validator: returns {family: [values]} and
    fails on structurally broken lines."""
    families = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            if line.startswith("# TYPE"):
                parts = line.split()
                if len(parts) != 4 or parts[3] not in ("counter", "gauge"):
                    fail(f"malformed TYPE line: {line!r}")
            continue
        name, _, value = line.partition(" ")
        if not value:
            fail(f"sample without value: {line!r}")
        family = name.partition("{")[0]
        try:
            families.setdefault(family, []).append(float(value))
        except ValueError:
            fail(f"non-numeric sample value: {line!r}")
    return families


def main():
    if len(sys.argv) < 2:
        fail("usage: stats_smoke.py path/to/ofp_soak [soak args...]")
    soak = sys.argv[1]
    extra = sys.argv[2:] or [
        "--sessions", "2", "--mods", "100", "--fault", "light", "--seed", "7"
    ]
    command = [soak, *extra, "--stats-port", "0", "--linger-ms", "8000"]
    print("stats_smoke: running", " ".join(command))
    proc = subprocess.Popen(command, stdout=subprocess.PIPE, text=True)

    port = None
    deadline = time.monotonic() + 30
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        sys.stdout.write(line)
        if line.startswith("STATS_PORT="):
            port = int(line.strip().split("=", 1)[1])
            break
    if port is None:
        proc.kill()
        fail("soak never announced STATS_PORT")

    # Prometheus text plane.
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=10) as response:
        content_type = response.headers.get("Content-Type", "")
        text = response.read().decode()
    if "text/plain" not in content_type or "version=0.0.4" not in content_type:
        fail(f"unexpected /metrics content type: {content_type!r}")
    families = parse_prometheus(text)
    for family in REQUIRED_FAMILIES:
        if family not in families:
            fail(f"missing family {family} in /metrics")
    if families["ofmtl_ofp_sessions_accepted_total"][0] < 1:
        fail("sessions_accepted_total never incremented")

    # JSON plane, cross-checked against the text plane.
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics.json", timeout=10) as response:
        doc = json.load(response)
    names = {metric["name"] for metric in doc["metrics"]}
    for family in REQUIRED_FAMILIES:
        if family not in names:
            fail(f"missing family {family} in /metrics.json")
    for metric in doc["metrics"]:
        for key in ("name", "type", "labels", "value"):
            if key not in metric:
                fail(f"metric missing key {key}: {metric}")

    # 404 handling must not kill the loop.
    try:
        urllib.request.urlopen(f"http://127.0.0.1:{port}/nope", timeout=10)
        fail("unknown path did not 404")
    except urllib.error.HTTPError as error:
        if error.code != 404:
            fail(f"unknown path answered {error.code}, wanted 404")

    # Drain the soak to completion; its own convergence checks must pass.
    for line in proc.stdout:
        sys.stdout.write(line)
    returncode = proc.wait(timeout=120)
    if returncode != 0:
        fail(f"ofp_soak exited {returncode}")
    print(f"stats_smoke: OK ({len(families)} families, "
          f"{len(doc['metrics'])} JSON samples)")


if __name__ == "__main__":
    main()
