#!/usr/bin/env python3
"""Offline markdown link checker for the repo's docs.

Validates every inline markdown link ([text](target)) in the given files:

- relative file links must point at an existing file or directory
  (resolved against the linking file's directory);
- fragment links into markdown files (foo.md#section, or bare #section)
  must match a heading, using GitHub's slug rules (lowercase, punctuation
  stripped, spaces to hyphens);
- http(s)/mailto links are skipped — CI runs offline and external URLs
  rotting is not this gate's job.

Usage:
    scripts/check_links.py README.md ROADMAP.md docs/*.md examples/README.md

Exit codes: 0 ok, 1 broken link(s), 2 usage/IO error.
"""

import re
import sys
from pathlib import Path

# Inline links, tolerating one level of nested parens in the target.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^()\s]*(?:\([^()]*\)[^()\s]*)*)\)")
IMAGE_RE = re.compile(r"\!\[[^\]]*\]\(([^()\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading):
    """GitHub's anchor slug for a heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # unwrap inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def headings_of(path):
    slugs = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(1))
        # Duplicate headings get -1, -2, ... suffixes on GitHub.
        count = slugs.get(slug, 0)
        slugs[slug] = count + 1
        if count:
            slugs[f"{slug}-{count}"] = 1
    return set(slugs)


def check_file(md_path, errors):
    try:
        text = md_path.read_text(encoding="utf-8")
    except OSError as err:
        print(f"error: cannot read {md_path}: {err}", file=sys.stderr)
        sys.exit(2)
    # Strip fenced code blocks so example snippets are not treated as links.
    lines = []
    in_fence = False
    for line in text.splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        lines.append("" if in_fence else line)
    stripped = "\n".join(lines)

    for regex in (LINK_RE, IMAGE_RE):
        for match in regex.finditer(stripped):
            target = match.group(1)
            if not target or target.startswith(("http://", "https://",
                                                "mailto:")):
                continue
            if target.startswith("#"):
                path, fragment = md_path, target[1:]
            elif "#" in target:
                rel, fragment = target.split("#", 1)
                path = (md_path.parent / rel).resolve()
            else:
                path, fragment = (md_path.parent / target).resolve(), None
            if not Path(path).exists():
                errors.append(f"{md_path}: broken link -> {target}")
                continue
            if fragment is not None:
                if Path(path).is_dir() or Path(path).suffix.lower() != ".md":
                    continue  # anchors into non-markdown: not checkable
                if fragment.lower() not in headings_of(Path(path)):
                    errors.append(
                        f"{md_path}: broken anchor -> {target} "
                        f"(no heading slug '{fragment}')")


def main():
    files = [Path(arg) for arg in sys.argv[1:]]
    if not files:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    errors = []
    for md in files:
        check_file(md, errors)
    if errors:
        for error in errors:
            print(f"  BROKEN {error}")
        print(f"\nFAIL: {len(errors)} broken link(s)", file=sys.stderr)
        sys.exit(1)
    print(f"OK: links in {len(files)} file(s) resolve")
    sys.exit(0)


if __name__ == "__main__":
    main()
