#!/usr/bin/env python3
"""Perf-trajectory gate: diff a freshly produced BENCH_*.json against the
committed baseline and fail on regressions beyond a threshold.

Usage:
    scripts/check_bench.py --baseline bench/baselines/BENCH_lookup.json \
        --current build/BENCH_lookup.json [--threshold 0.10] [--key-prefix X]

Semantics follow the file's unit: ns_per_packet (and any *_ns / ns_* unit)
regresses upward, packets_per_sec (and any *_per_sec unit) regresses
downward. Individual metric NAMES override the file unit when they declare
their own: a metric whose leaf ends in `_ns` (tail quantiles like
parallel_tail/.../p99_ns riding in a packets_per_sec file) or mentions
`overhead` regresses upward; `*per_sec*` / `*mpps*` / `hitrate/*` metrics
regress downward. Metrics present only on one side are reported but never
fail the gate (new benches may add metrics). Metadata drift (git SHA aside)
is surfaced as a warning so apples-to-oranges comparisons are visible.

Thread-sensitive metrics (scaling curves, work-stealing scenarios) can be
exempted from the baseline gate when the machines differ:
    --skip-if-hardware-differs parallel/
compares metrics starting with that prefix only when the `hardware_threads`
metadata matches the baseline; otherwise they are reported informationally.

Within-run flatness invariants (machine-independent) are gated with
    --flat-pair publish/entries_1000=publish/entries_100000:1.0
which requires the two CURRENT values to sit within the given relative
tolerance of each other (|a-b|/min(a,b) <= tol) — e.g. the left-right
publish latency must not scale with table size.

Within-run floor invariants (machine-independent) are gated with
    --min-metric hitrate/routing_yoza/zipf_s1.1_f4096:90
which requires the CURRENT value of the named metric to be >= the floor —
e.g. the flow cache's Zipf hit rate is a property of the stream and the
cache geometry, not of the machine, so it gates on foreign runners too.
Mind the metric's unit: hitrate/* metrics are emitted in PERCENT (a 90%
floor is `:90`), parse_mpps/* in million packets per second (a deliberately
conservative floor like `:0.5` catches order-of-magnitude regressions on
any hardware). --min-hit-rate is the historical alias of the same flag.

Within-run ceiling invariants are the mirror image, gated with
    --max-metric soak/desyncs:0 --max-metric soak/dropped_sessions:0
which requires the CURRENT value of the named metric to be <= the ceiling —
the natural shape for robustness counters (desyncs, dropped sessions,
error totals) where any value above the bound means the run misbehaved.

Within-run ratio ceilings relate two CURRENT metrics:
    --max-ratio replay/.../cache_on_p99_ns,replay/.../cache_on_p50_ns:100
requires current[NUM] / current[DEN] <= MAX (comma-separated because metric
names contain '/'). The natural shape for tail-latency SLOs: p99/p50 is a
machine-independent tail-blowup detector — absolute quantiles shift with
hardware, but a p99 two orders of magnitude over the median means the tail
collapsed no matter the machine. Ceilings are deliberately catastrophic-
only: shared runners legitimately wobble small multiples.

Exit codes: 0 ok, 1 regression/flatness violation, 2 usage/IO error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def lower_is_better(unit):
    unit = unit.lower()
    if "per_sec" in unit or "throughput" in unit:
        return False
    return True  # ns/packet, ms, bytes, ... default: lower is better


def metric_lower_is_better(name, file_default):
    """Per-metric direction: a metric name that declares its own unit
    (tail quantiles in `_ns`, overhead percentages, embedded rates) wins
    over the containing file's unit."""
    leaf = name.rsplit("/", 1)[-1].lower()
    if leaf.endswith("_ns") or "overhead" in leaf:
        return True
    if "per_sec" in leaf or "mpps" in name.lower() or \
            name.lower().startswith("hitrate/"):
        return False
    return file_default


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="allowed relative regression (0.10 = 10%%)",
    )
    parser.add_argument(
        "--key-prefix",
        default="",
        help="only compare metrics whose name starts with this prefix",
    )
    parser.add_argument(
        "--skip-if-hardware-differs",
        action="append",
        default=[],
        metavar="PREFIX",
        help="metrics starting with PREFIX are only gated when the "
        "hardware_threads metadata matches the baseline (repeatable)",
    )
    parser.add_argument(
        "--flat-pair",
        action="append",
        default=[],
        metavar="A=B:TOL",
        help="require |current[A]-current[B]|/min <= TOL (repeatable); "
        "checked within the current run, so it is hardware-independent",
    )
    parser.add_argument(
        "--min-metric",
        "--min-hit-rate",  # historical alias (pre-generalization name)
        action="append",
        default=[],
        dest="min_metric",
        metavar="NAME:MIN",
        help="require current[NAME] >= MIN (repeatable); checked within "
        "the current run, so it is hardware-independent",
    )
    parser.add_argument(
        "--max-metric",
        action="append",
        default=[],
        dest="max_metric",
        metavar="NAME:MAX",
        help="require current[NAME] <= MAX (repeatable); checked within "
        "the current run, so it is hardware-independent",
    )
    parser.add_argument(
        "--max-ratio",
        action="append",
        default=[],
        dest="max_ratio",
        metavar="NUM,DEN:MAX",
        help="require current[NUM]/current[DEN] <= MAX (repeatable; names "
        "comma-separated since they contain '/'); checked within the "
        "current run, so it is hardware-independent — e.g. a p99/p50 "
        "tail-blowup ceiling",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    if baseline.get("unit") != current.get("unit"):
        print(
            f"error: unit mismatch: baseline={baseline.get('unit')} "
            f"current={current.get('unit')}",
            file=sys.stderr,
        )
        sys.exit(2)
    lower = lower_is_better(str(baseline.get("unit", "")))

    meta_b = baseline.get("metadata", {})
    meta_c = current.get("metadata", {})
    for key in sorted(set(meta_b) | set(meta_c)):
        if key == "git_sha":
            continue
        if meta_b.get(key) != meta_c.get(key):
            print(
                f"warning: metadata '{key}' differs "
                f"(baseline={meta_b.get(key)!r}, current={meta_c.get(key)!r}) "
                "— comparison may not be apples-to-apples"
            )

    hardware_matches = meta_b.get("hardware_threads") == meta_c.get(
        "hardware_threads")
    if not hardware_matches and args.skip_if_hardware_differs:
        print(
            "note: hardware_threads differs from baseline — metrics under "
            f"{args.skip_if_hardware_differs} are informational only"
        )

    results_b = baseline.get("results", {})
    results_c = current.get("results", {})
    regressions = []
    compared = 0
    hw_skipped = 0
    for name in sorted(set(results_b) | set(results_c)):
        if args.key_prefix and not name.startswith(args.key_prefix):
            continue
        if name not in results_b:
            print(f"  new    {name}: {results_c[name]:.2f} (no baseline)")
            continue
        if name not in results_c:
            print(f"  gone   {name}: baseline {results_b[name]:.2f} has no "
                  "current value")
            continue
        old, new = float(results_b[name]), float(results_c[name])
        if not hardware_matches and any(
                name.startswith(p) for p in args.skip_if_hardware_differs):
            hw_skipped += 1
            print(f"  info   {name}: {old:.2f} -> {new:.2f} "
                  "(hardware differs, not gated)")
            continue
        compared += 1
        if old <= 0:
            print(f"  skip   {name}: non-positive baseline {old}")
            continue
        metric_lower = metric_lower_is_better(name, lower)
        delta = (new - old) / old if metric_lower else (old - new) / old
        marker = "REGRESS" if delta > args.threshold else "ok"
        print(f"  {marker:7s}{name}: {old:.2f} -> {new:.2f} "
              f"({'+' if new >= old else ''}{100 * (new - old) / old:.1f}%)")
        if delta > args.threshold:
            regressions.append(name)

    flat_failures = []
    for spec in args.flat_pair:
        try:
            pair, tol = spec.rsplit(":", 1)
            name_a, name_b = pair.split("=", 1)
            tolerance = float(tol)
        except ValueError:
            print(f"error: bad --flat-pair spec {spec!r} (want A=B:TOL)",
                  file=sys.stderr)
            sys.exit(2)
        if name_a not in results_c or name_b not in results_c:
            print(f"error: --flat-pair metric missing from current run: "
                  f"{spec}", file=sys.stderr)
            sys.exit(2)
        a, b = float(results_c[name_a]), float(results_c[name_b])
        if min(a, b) <= 0:
            print(f"error: --flat-pair non-positive value in {spec}",
                  file=sys.stderr)
            sys.exit(2)
        spread = abs(a - b) / min(a, b)
        marker = "FLAT-VIOLATION" if spread > tolerance else "flat-ok"
        print(f"  {marker:15s}{name_a}={a:.2f} vs {name_b}={b:.2f} "
              f"(spread {100 * spread:.1f}%, tolerance {100 * tolerance:.0f}%)")
        if spread > tolerance:
            flat_failures.append(spec)

    floor_failures = []
    for spec in args.min_metric:
        try:
            name, floor_text = spec.rsplit(":", 1)
            floor = float(floor_text)
        except ValueError:
            print(f"error: bad --min-metric spec {spec!r} (want NAME:MIN)",
                  file=sys.stderr)
            sys.exit(2)
        if name not in results_c:
            print(f"error: --min-metric metric missing from current run: "
                  f"{spec}", file=sys.stderr)
            sys.exit(2)
        value = float(results_c[name])
        marker = "FLOOR-VIOLATION" if value < floor else "floor-ok"
        print(f"  {marker:15s}{name}={value:.4f} (floor {floor:.4f})")
        if value < floor:
            floor_failures.append(spec)

    ceiling_failures = []
    for spec in args.max_metric:
        try:
            name, ceiling_text = spec.rsplit(":", 1)
            ceiling = float(ceiling_text)
        except ValueError:
            print(f"error: bad --max-metric spec {spec!r} (want NAME:MAX)",
                  file=sys.stderr)
            sys.exit(2)
        if name not in results_c:
            print(f"error: --max-metric metric missing from current run: "
                  f"{spec}", file=sys.stderr)
            sys.exit(2)
        value = float(results_c[name])
        marker = "CEIL-VIOLATION" if value > ceiling else "ceil-ok"
        print(f"  {marker:15s}{name}={value:.4f} (ceiling {ceiling:.4f})")
        if value > ceiling:
            ceiling_failures.append(spec)

    ratio_failures = []
    for spec in args.max_ratio:
        try:
            names, ceiling_text = spec.rsplit(":", 1)
            name_num, name_den = names.split(",", 1)
            ceiling = float(ceiling_text)
        except ValueError:
            print(f"error: bad --max-ratio spec {spec!r} (want NUM,DEN:MAX)",
                  file=sys.stderr)
            sys.exit(2)
        if name_num not in results_c or name_den not in results_c:
            print(f"error: --max-ratio metric missing from current run: "
                  f"{spec}", file=sys.stderr)
            sys.exit(2)
        num, den = float(results_c[name_num]), float(results_c[name_den])
        if den <= 0:
            print(f"error: --max-ratio non-positive denominator in {spec}",
                  file=sys.stderr)
            sys.exit(2)
        ratio = num / den
        marker = "RATIO-VIOLATION" if ratio > ceiling else "ratio-ok"
        print(f"  {marker:15s}{name_num}/{name_den}={ratio:.2f} "
              f"(ceiling {ceiling:.2f})")
        if ratio > ceiling:
            ratio_failures.append(spec)

    if (compared == 0 and hw_skipped == 0 and not args.flat_pair
            and not args.min_metric and not args.max_metric
            and not args.max_ratio):
        print("error: no overlapping metrics compared", file=sys.stderr)
        sys.exit(2)
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} metric(s) regressed more than "
            f"{100 * args.threshold:.0f}%: {', '.join(regressions)}",
            file=sys.stderr,
        )
        sys.exit(1)
    if flat_failures:
        print(
            f"\nFAIL: {len(flat_failures)} flatness invariant(s) violated: "
            f"{', '.join(flat_failures)}",
            file=sys.stderr,
        )
        sys.exit(1)
    if floor_failures:
        print(
            f"\nFAIL: {len(floor_failures)} floor invariant(s) violated: "
            f"{', '.join(floor_failures)}",
            file=sys.stderr,
        )
        sys.exit(1)
    if ceiling_failures:
        print(
            f"\nFAIL: {len(ceiling_failures)} ceiling invariant(s) violated: "
            f"{', '.join(ceiling_failures)}",
            file=sys.stderr,
        )
        sys.exit(1)
    if ratio_failures:
        print(
            f"\nFAIL: {len(ratio_failures)} ratio ceiling(s) violated: "
            f"{', '.join(ratio_failures)}",
            file=sys.stderr,
        )
        sys.exit(1)
    print(f"\nOK: {compared} metric(s) within {100 * args.threshold:.0f}% "
          f"of baseline"
          + (f", {hw_skipped} hardware-sensitive metric(s) informational"
             if hw_skipped else "")
          + (f", {len(args.flat_pair)} flatness invariant(s) hold"
             if args.flat_pair else "")
          + (f", {len(args.min_metric)} floor invariant(s) hold"
             if args.min_metric else "")
          + (f", {len(args.max_metric)} ceiling invariant(s) hold"
             if args.max_metric else "")
          + (f", {len(args.max_ratio)} ratio ceiling(s) hold"
             if args.max_ratio else ""))
    sys.exit(0)


if __name__ == "__main__":
    main()
