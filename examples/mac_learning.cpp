// MAC-learning switch: the paper's first use case, run as a live system.
// Packets whose destination is unknown go to the controller (table miss);
// the simulated controller learns source addresses and installs flow
// entries, periodically recompiling the decomposed tables and accounting
// update cycles with and without the label method.
//
//   $ ./mac_learning [packets]
#include <cstdlib>
#include <iostream>
#include <map>

#include "core/builder.hpp"
#include "core/update_engine.hpp"
#include "workload/rng.hpp"

int main(int argc, char** argv) {
  using namespace ofmtl;
  const std::size_t packet_count =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 2000;

  // A small campus of stations across 4 VLANs.
  workload::Rng rng(2024);
  struct Station {
    std::uint16_t vlan;
    std::uint64_t mac;
    std::uint32_t port;
  };
  std::vector<Station> stations;
  for (std::uint32_t i = 0; i < 64; ++i) {
    stations.push_back({static_cast<std::uint16_t>(10 * (1 + i % 4)),
                        0x020000000000ULL | (rng.next() & 0xFFFFFF),
                        1 + i % 16});
  }

  // The switch state: learned (vlan, mac) -> port, as a filter set.
  FilterSet learned;
  learned.name = "mac_learning";
  learned.fields = {FieldId::kVlanId, FieldId::kEthDst};
  std::map<std::pair<std::uint16_t, std::uint64_t>, std::uint32_t> known;

  std::size_t to_controller = 0, forwarded = 0, flooded = 0, installs = 0;
  std::uint64_t label_cycles = 0, original_cycles = 0;

  MultiTableLookup pipeline;  // empty until first install
  bool dirty = true;

  for (std::size_t n = 0; n < packet_count; ++n) {
    const auto& src = stations[rng.below(stations.size())];
    const auto& dst = stations[rng.below(stations.size())];
    if (src.vlan != dst.vlan) continue;  // stations talk within their VLAN

    if (dirty && !learned.entries.empty()) {
      const auto spec = build_app(learned, TableLayout::kPerFieldTables);
      pipeline = compile_app(spec);
      const auto cost = update_cost(pipeline, UpdateScope::kAll);
      label_cycles = cost.optimized_cycles();
      original_cycles = cost.original_cycles();
      dirty = false;
    }

    PacketHeader header;
    header.set_in_port(src.port);
    header.set_vlan_id(src.vlan);
    header.set_eth_src(MacAddress{src.mac});
    header.set_eth_dst(MacAddress{dst.mac});

    const bool known_dst =
        !learned.entries.empty() &&
        pipeline.execute(header).verdict == Verdict::kForwarded;
    if (known_dst) {
      ++forwarded;
    } else {
      // Table miss -> send to controller (Section IV.C). The controller
      // floods the frame and learns the *source*.
      ++to_controller;
      ++flooded;
    }
    if (!known.contains({src.vlan, src.mac})) {
      known[{src.vlan, src.mac}] = src.port;
      FlowEntry entry;
      entry.id = static_cast<FlowEntryId>(learned.entries.size());
      entry.priority = 1;
      entry.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{src.vlan}));
      entry.match.set(FieldId::kEthDst, FieldMatch::exact(src.mac));
      entry.instructions = output_instruction(src.port);
      learned.entries.push_back(std::move(entry));
      ++installs;
      dirty = true;
    }
  }

  std::cout << "MAC learning over " << packet_count << " frames:\n";
  std::cout << "  forwarded by the pipeline : " << forwarded << "\n";
  std::cout << "  misses -> controller      : " << to_controller
            << " (flooded " << flooded << ")\n";
  std::cout << "  flow entries installed    : " << installs << "\n\n";
  std::cout << "Final table update cost (2 cycles/word, Section V.B):\n";
  std::cout << "  label method   : " << label_cycles << " cycles\n";
  std::cout << "  original files : " << original_cycles << " cycles\n\n";
  std::cout << "Final memory report:\n";
  pipeline.memory_report("switch").print(std::cout);
  return 0;
}
