// IPv4 router: the paper's second use case. Loads a calibrated backbone
// routing filter (ingress port + destination prefix, LPM with a default
// route), compiles the two-table decomposed pipeline, routes a packet
// stream, and prints the per-trie/per-level memory study of Section V.A.
//
//   $ ./router [router-name] [packets]      (default: yoza, 20000)
#include <cstdlib>
#include <iostream>

#include "core/builder.hpp"
#include "core/update_engine.hpp"
#include "mem/memory_model.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

int main(int argc, char** argv) {
  using namespace ofmtl;
  const std::string name = argc > 1 ? argv[1] : "yoza";
  const std::size_t packets =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 20000;

  const auto set =
      workload::generate_routing_filterset(workload::routing_target(name));
  std::cout << "Routing filter '" << name << "': " << set.entries.size()
            << " routes (incl. 0.0.0.0/0 default)\n";

  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  const auto pipeline = compile_app(spec);

  // Route a mixed stream: 90% addressed within the table, 10% random.
  const auto trace = workload::generate_trace(
      set, {.packets = packets, .hit_ratio = 0.9, .seed = 5});
  std::size_t forwarded = 0, to_controller = 0;
  std::map<std::uint32_t, std::size_t> port_histogram;
  for (const auto& header : trace) {
    const auto result = pipeline.execute(header);
    if (result.verdict == Verdict::kForwarded) {
      ++forwarded;
      ++port_histogram[result.output_ports.front()];
    } else {
      ++to_controller;
    }
  }
  std::cout << "Routed " << forwarded << "/" << trace.size() << " packets ("
            << to_controller << " to controller - unknown ingress port).\n";
  std::cout << "Busiest next hops:";
  std::size_t shown = 0;
  for (const auto& [port, count] : port_histogram) {
    if (++shown > 5) break;
    std::cout << "  port " << port << ": " << count;
  }
  std::cout << "\n\n";

  // The Section V.A memory study for this router.
  std::cout << "Per-structure memory (sparse policy):\n";
  pipeline.memory_report(name).print(std::cout);

  const auto& table1 = pipeline.table(1);
  for (const auto& search : table1.field_searches()) {
    if (search.tries().empty()) continue;
    std::cout << "\nIPv4 trie detail (label method, strides 5/5/6):\n";
    static const char* const part[] = {"higher", "lower"};
    for (std::size_t p = 0; p < search.tries().size(); ++p) {
      const auto& trie = search.tries()[p];
      std::cout << "  " << part[p] << " trie: " << trie.prefix_count()
                << " unique partition prefixes, "
                << trie.stored_nodes(TrieStorage::kSparse) << " stored nodes";
      for (std::size_t level = 0; level < trie.level_count(); ++level) {
        std::cout << (level == 0 ? "  [" : " ")
                  << trie.stored_nodes(level, TrieStorage::kSparse);
      }
      std::cout << "]\n";
    }
  }

  const auto cost = update_cost(pipeline, UpdateScope::kAlgorithms);
  std::cout << "\nFull-table update: " << cost.optimized_cycles()
            << " cycles with labels vs " << cost.original_cycles()
            << " without (" << cost.reduction_percent() << "% saved).\n";
  return 0;
}
