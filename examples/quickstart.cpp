// Quickstart: build a two-table OpenFlow pipeline from a handful of flow
// entries, compile it into the decomposed lookup architecture, classify a
// few packets (from raw bytes), and print the memory report.
//
//   $ ./quickstart
#include <iostream>

#include "core/builder.hpp"
#include "core/pipeline.hpp"
#include "net/packet.hpp"

int main() {
  using namespace ofmtl;

  // 1. Describe a tiny MAC-learning filter set: (VLAN, dst MAC) -> port.
  FilterSet set;
  set.name = "quickstart";
  set.fields = {FieldId::kVlanId, FieldId::kEthDst};
  const struct {
    std::uint16_t vlan;
    const char* mac;
    std::uint32_t port;
  } rules[] = {
      {10, "02:00:00:00:00:01", 1},
      {10, "02:00:00:00:00:02", 2},
      {20, "02:00:00:00:00:01", 3},  // same MAC, different VLAN
      {20, "02:00:00:00:00:03", 4},
  };
  for (const auto& rule : rules) {
    FlowEntry entry;
    entry.id = static_cast<FlowEntryId>(set.entries.size());
    entry.priority = 1;
    entry.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{rule.vlan}));
    entry.match.set(FieldId::kEthDst,
                    FieldMatch::exact(MacAddress::parse(rule.mac).value()));
    entry.instructions = output_instruction(rule.port);
    set.entries.push_back(std::move(entry));
  }

  // 2. Distribute the two fields over two tables (the paper's layout) and
  //    compile into the decomposed architecture: a VLAN hash LUT feeding,
  //    via Goto-Table + metadata, three 16-bit multi-bit tries over the MAC.
  const AppSpec spec = build_app(set, TableLayout::kPerFieldTables);
  const MultiTableLookup pipeline = compile_app(spec);
  std::cout << "Compiled " << pipeline.table_count() << " lookup tables from "
            << set.entries.size() << " flow entries.\n\n";

  // 3. Classify real packet bytes.
  PacketSpec packet;
  packet.eth_src = MacAddress::parse("02:00:00:00:00:99");
  packet.eth_dst = MacAddress::parse("02:00:00:00:00:01");
  packet.vlan_id = 20;
  packet.eth_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  packet.ipv4_src = Ipv4Address::parse("10.0.0.1");
  packet.ipv4_dst = Ipv4Address::parse("10.0.0.2");
  packet.ip_proto = static_cast<std::uint8_t>(IpProto::kUdp);
  packet.src_port = 5000;
  packet.dst_port = 5001;

  const auto bytes = serialize_packet(packet);
  const auto parsed = parse_packet(bytes, /*in_port=*/7);
  const auto result = pipeline.execute(parsed.header);
  std::cout << "Packet " << parsed.header.to_string() << "\n  -> "
            << to_string(result.verdict);
  for (const auto port : result.output_ports) std::cout << " port " << port;
  std::cout << "  (matched entries:";
  for (const auto id : result.matched_entries) std::cout << " " << id;
  std::cout << ")\n";

  // An unknown MAC misses and goes to the controller.
  packet.eth_dst = MacAddress::parse("02:00:00:00:00:77");
  const auto miss =
      pipeline.execute(parse_packet(serialize_packet(packet), 7).header);
  std::cout << "Unknown destination -> " << to_string(miss.verdict) << "\n\n";

  // 4. The memory-cost surface the paper analyses.
  std::cout << "Memory report:\n";
  pipeline.memory_report("quickstart").print(std::cout);
  return 0;
}
