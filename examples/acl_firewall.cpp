// 5-tuple ACL firewall: classify raw packets against a ClassBench-style
// rule set with the decomposed lookup table, cross-checking every verdict
// against linear search and showing the Table I baselines side by side.
//
//   $ ./acl_firewall [rules]                (default: 600)
#include <cstdlib>
#include <iostream>

#include "core/lookup_table.hpp"
#include "flow/flow_table.hpp"
#include "mdclassifier/hypersplit.hpp"
#include "mdclassifier/linear.hpp"
#include "mdclassifier/tuple_space.hpp"
#include "mem/memory_model.hpp"
#include "net/packet.hpp"
#include "workload/acl_synth.hpp"
#include "workload/rng.hpp"
#include "workload/trace_gen.hpp"

int main(int argc, char** argv) {
  using namespace ofmtl;
  workload::AclConfig config;
  config.rules = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 600;
  const auto set = workload::generate_acl(config);
  std::cout << "ACL with " << set.entries.size()
            << " rules over (src, dst, sport, dport, proto)\n\n";

  FlowTable sorted(set.entries);
  const auto table = LookupTable::compile(sorted);
  md::LinearClassifier linear{md::RuleSet::from(set)};

  // Build raw packets, parse them, classify the parsed headers.
  workload::Rng rng(99);
  std::size_t permitted = 0, denied = 0, no_match = 0, disagreements = 0;
  for (int i = 0; i < 3000; ++i) {
    const auto& rule = set.entries[rng.below(set.entries.size())];
    auto header = workload::header_matching(rule.match, set.fields, rng.next());

    PacketSpec spec;
    spec.eth_src = MacAddress{0x020000000001ULL};
    spec.eth_dst = MacAddress{0x020000000002ULL};
    spec.eth_type = static_cast<std::uint16_t>(EtherType::kIpv4);
    spec.ipv4_src = Ipv4Address{
        static_cast<std::uint32_t>(header.get64(FieldId::kIpv4Src))};
    spec.ipv4_dst = Ipv4Address{
        static_cast<std::uint32_t>(header.get64(FieldId::kIpv4Dst))};
    spec.ip_proto = static_cast<std::uint8_t>(header.get64(FieldId::kIpProto));
    spec.src_port = static_cast<std::uint16_t>(header.get64(FieldId::kSrcPort));
    spec.dst_port = static_cast<std::uint16_t>(header.get64(FieldId::kDstPort));
    const auto parsed = parse_packet(serialize_packet(spec), 1);

    const FlowEntry* verdict = table.lookup(parsed.header);
    const auto oracle = linear.classify(parsed.header);
    if ((verdict == nullptr) != !oracle.has_value() ||
        (verdict != nullptr && verdict->id != set.entries[*oracle].id)) {
      ++disagreements;
    }
    if (verdict == nullptr) {
      ++no_match;
    } else {
      bool drops = false;
      for (const auto& action : verdict->instructions.write_actions) {
        if (const auto* out = std::get_if<OutputAction>(&action)) {
          drops = out->port == 0;
        }
      }
      (drops ? denied : permitted) += 1;
    }
  }
  std::cout << "permit " << permitted << " / deny " << denied
            << " / default(no match -> controller) " << no_match << "\n";
  std::cout << "decomposed-vs-linear disagreements: " << disagreements
            << " (must be 0)\n\n";

  std::cout << "Structure memory comparison:\n";
  md::TupleSpaceClassifier tss{md::RuleSet::from(set)};
  md::HyperSplitClassifier hypersplit{md::RuleSet::from(set)};
  std::cout << "  ofmtl decomposed : "
            << mem::to_kbits(table.memory_report("t").total_bits())
            << " Kbits\n";
  std::cout << "  tuple space      : "
            << mem::to_kbits(tss.memory_report().total_bits()) << " Kbits ("
            << tss.tuple_count() << " tuples)\n";
  std::cout << "  hypersplit       : "
            << mem::to_kbits(hypersplit.memory_report().total_bits())
            << " Kbits (" << hypersplit.node_count() << " nodes)\n";
  return disagreements == 0 ? 0 : 1;
}
