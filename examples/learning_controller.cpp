// Controller <-> switch over the wire protocol: a learning controller that
// speaks the binary control channel end to end — HELLO handshake, PACKET_IN
// on table miss, FLOW_MOD installs with idle timeouts and FLOW_REMOVED
// notifications, ECHO keepalives. Everything crossing the "wire" is encoded
// bytes; the example decodes and reacts exactly as a remote controller would.
//
//   $ ./learning_controller [frames]
#include <cstdlib>
#include <deque>
#include <iostream>
#include <map>

#include "ofp/agent.hpp"
#include "workload/rng.hpp"

namespace {

using namespace ofmtl;
using namespace ofmtl::ofp;

/// The controller side: learns (vlan, mac) -> port from PACKET_INs.
class LearningController {
 public:
  /// React to one switch->controller message; returns controller->switch
  /// messages (wire bytes).
  std::vector<std::vector<std::uint8_t>> handle(
      const std::vector<std::uint8_t>& wire) {
    const Envelope envelope = decode(wire);
    std::vector<std::vector<std::uint8_t>> out;
    if (std::holds_alternative<Hello>(envelope.message)) {
      return out;  // handshake complete
    }
    if (const auto* removed = std::get_if<FlowRemovedMsg>(&envelope.message)) {
      ++flows_removed;
      forget(removed->entry_id);
      return out;
    }
    const auto* packet_in = std::get_if<PacketIn>(&envelope.message);
    if (packet_in == nullptr) return out;

    ++packet_ins;
    const auto parsed = parse_packet(packet_in->frame, packet_in->in_port);
    const std::uint16_t vlan = parsed.spec.vlan_id.value_or(0);
    const std::uint64_t src = parsed.spec.eth_src.value();

    // Learn the source if unknown.
    if (!learned_.contains({vlan, src})) {
      FlowModMsg mod;
      mod.entry.id = next_id_++;
      mod.entry.priority = 1;
      mod.entry.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{vlan}));
      mod.entry.match.set(FieldId::kEthDst, FieldMatch::exact(src));
      mod.entry.instructions = output_instruction(packet_in->in_port);
      mod.timeouts.idle_timeout = 60;
      mod.send_flow_removed = true;
      learned_[{vlan, src}] = mod.entry.id;
      id_to_key_[mod.entry.id] = {vlan, src};
      out.push_back(encode({next_xid_++, mod}));
      ++flows_installed;
    }
    // Flood the original frame (PACKET_OUT).
    PacketOut flood;
    flood.in_port = packet_in->in_port;
    flood.actions.push_back(
        OutputAction{static_cast<std::uint32_t>(ReservedPort::kFlood)});
    flood.frame = packet_in->frame;
    out.push_back(encode({next_xid_++, flood}));
    return out;
  }

  std::size_t packet_ins = 0;
  std::size_t flows_installed = 0;
  std::size_t flows_removed = 0;

 private:
  void forget(FlowEntryId id) {
    const auto it = id_to_key_.find(id);
    if (it == id_to_key_.end()) return;
    learned_.erase(it->second);
    id_to_key_.erase(it);
  }

  std::map<std::pair<std::uint16_t, std::uint64_t>, FlowEntryId> learned_;
  std::map<FlowEntryId, std::pair<std::uint16_t, std::uint64_t>> id_to_key_;
  FlowEntryId next_id_ = 1;
  std::uint32_t next_xid_ = 100;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t frames =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4000;

  SwitchAgent agent({{FieldId::kVlanId, FieldId::kEthDst}});
  LearningController controller;

  // Handshake.
  for (const auto& response : agent.handle_control(encode({1, Hello{}}))) {
    (void)controller.handle(response);
  }

  workload::Rng rng(31337);
  std::size_t forwarded = 0, flooded = 0, echoes = 0;
  std::deque<std::vector<std::uint8_t>> to_controller;

  for (std::uint64_t now = 1; now <= frames; ++now) {
    // Station traffic.
    PacketSpec spec;
    spec.vlan_id = static_cast<std::uint16_t>(10 + 10 * rng.below(3));
    spec.eth_src = MacAddress{0x020000000000ULL | rng.below(48)};
    spec.eth_dst = MacAddress{0x020000000000ULL | rng.below(48)};
    spec.eth_type = 0x0800;
    spec.ipv4_src = Ipv4Address{10, 0, 0, 1};
    spec.ipv4_dst = Ipv4Address{10, 0, 0, 2};
    const auto frame = serialize_packet(spec);
    const auto in_port = 1 + static_cast<std::uint32_t>(spec.eth_src.value() % 16);

    auto result = agent.handle_frame(frame, in_port, now);
    if (result.execution.verdict == Verdict::kForwarded) {
      ++forwarded;
    } else if (result.packet_in) {
      ++flooded;
      to_controller.push_back(std::move(*result.packet_in));
    }

    // Controller processes its queue; its responses go back to the agent.
    while (!to_controller.empty()) {
      const auto wire = std::move(to_controller.front());
      to_controller.pop_front();
      for (const auto& response : controller.handle(wire)) {
        for (auto& notification : agent.handle_control(response, now)) {
          to_controller.push_back(std::move(notification));
        }
      }
    }

    // Periodic keepalive + expiry sweep.
    if (now % 500 == 0) {
      const auto replies =
          agent.handle_control(encode({2, EchoRequest{{1}}}), now);
      echoes += replies.size();
      for (auto& notification : agent.sweep(now)) {
        to_controller.push_back(std::move(notification));
      }
      while (!to_controller.empty()) {
        (void)controller.handle(to_controller.front());
        to_controller.pop_front();
      }
    }
  }

  std::cout << "Learning controller over " << frames << " frames (wire "
            << "protocol end to end):\n";
  std::cout << "  forwarded by switch : " << forwarded << "\n";
  std::cout << "  PACKET_IN -> flood  : " << flooded << "\n";
  std::cout << "  FLOW_MODs installed : " << controller.flows_installed << "\n";
  std::cout << "  FLOW_REMOVED seen   : " << controller.flows_removed << "\n";
  std::cout << "  echo keepalives     : " << echoes << "\n";
  std::cout << "  live flow entries   : " << agent.model().entry_count() << "\n";
  return 0;
}
