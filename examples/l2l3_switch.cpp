// Combined L2/L3 switch with a live control channel: a 3-table pipeline
// (VLAN admission -> MAC learning -> IPv4 routing for frames addressed to
// the router MAC), driven through SwitchModel flow-mods with idle timeouts.
// Shows the full library surface: multi-table Goto semantics, incremental
// updates on the decomposed structures, per-flow counters and expiry, and
// the live equivalence check against the reference pipeline.
//
//   $ ./l2l3_switch [ticks]
#include <cstdlib>
#include <iostream>

#include "core/switch_model.hpp"
#include "workload/rng.hpp"

int main(int argc, char** argv) {
  using namespace ofmtl;
  const std::uint64_t ticks =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 3000;

  constexpr std::uint64_t kRouterMac = 0x02000000FFFFULL;

  // Table 0: VLAN admission (known VLANs -> table 1).
  // Table 1: MAC learning; router MAC -> table 2.
  // Table 2: IPv4 longest-prefix routing.
  SwitchModel sw({{FieldId::kVlanId},
                  {FieldId::kEthDst},
                  {FieldId::kIpv4Dst}});

  FlowEntryId next_id = 1;
  std::uint64_t now = 0;

  // Static configuration: admit VLANs 10/20, steer router-addressed frames.
  for (const std::uint16_t vlan : {10, 20}) {
    FlowMod mod;
    mod.table = 0;
    mod.entry.id = next_id++;
    mod.entry.priority = 1;
    mod.entry.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{vlan}));
    mod.entry.instructions = goto_table_instruction(1);
    sw.apply(mod, now);
  }
  {
    FlowMod mod;
    mod.table = 1;
    mod.entry.id = next_id++;
    mod.entry.priority = 100;
    mod.entry.match.set(FieldId::kEthDst, FieldMatch::exact(kRouterMac));
    mod.entry.instructions = goto_table_instruction(2);
    sw.apply(mod, now);
  }
  // Routing table: a few static prefixes + default route.
  const struct {
    const char* cidr;
    unsigned len;
    std::uint32_t port;
  } routes[] = {
      {"10.1.0.0", 16, 31}, {"10.2.0.0", 16, 32}, {"10.2.3.0", 24, 33},
      {"0.0.0.0", 0, 30},
  };
  for (const auto& route : routes) {
    FlowMod mod;
    mod.table = 2;
    mod.entry.id = next_id++;
    mod.entry.priority = static_cast<std::uint16_t>(route.len);
    mod.entry.match.set(
        FieldId::kIpv4Dst,
        FieldMatch::of_prefix(Prefix::from_value(
            Ipv4Address::parse(route.cidr).value(), route.len, 32)));
    mod.entry.instructions = output_instruction(route.port);
    sw.apply(mod, now);
  }

  // Traffic: stations churn; MAC entries learned with idle timeout 50.
  workload::Rng rng(7);
  std::size_t l2_forwarded = 0, routed = 0, to_controller = 0, learned = 0,
              expired_total = 0, mismatches = 0;
  std::vector<std::pair<std::uint64_t, FlowEntryId>> station_macs;  // mac, id

  for (now = 1; now <= ticks; ++now) {
    PacketHeader h;
    h.set_vlan_id(rng.chance(0.5) ? 10 : 20);
    const std::uint64_t src_mac = 0x020000000000ULL | rng.below(40);
    h.set_eth_src(MacAddress{src_mac});
    if (rng.chance(0.3)) {
      h.set_eth_dst(MacAddress{kRouterMac});
      h.set_ipv4_dst(Ipv4Address{static_cast<std::uint32_t>(
          (0x0A010000 + rng.below(0x2FFFF)) & 0xFFFFFFFF)});
    } else if (!station_macs.empty() && rng.chance(0.7)) {
      h.set_eth_dst(MacAddress{station_macs[rng.below(station_macs.size())].first});
    } else {
      h.set_eth_dst(MacAddress{0x020000000000ULL | rng.below(40)});
    }

    const auto result = sw.process(h, 64 + rng.below(1400), now);
    if (sw.process_reference(h) != result) ++mismatches;
    switch (result.verdict) {
      case Verdict::kForwarded:
        (result.visited_tables.size() == 3 ? routed : l2_forwarded) += 1;
        break;
      case Verdict::kToController: {
        ++to_controller;
        // Controller learns the source MAC with an idle timeout.
        bool known = false;
        for (const auto& [mac, id] : station_macs) known |= mac == src_mac;
        if (!known) {
          FlowMod mod;
          mod.table = 1;
          mod.entry.id = next_id++;
          mod.entry.priority = 1;
          mod.entry.match.set(FieldId::kEthDst, FieldMatch::exact(src_mac));
          mod.entry.instructions =
              output_instruction(1 + static_cast<std::uint32_t>(src_mac % 16));
          mod.timeouts.idle_timeout = 50;
          sw.apply(mod, now);
          station_macs.emplace_back(src_mac, mod.entry.id);
          ++learned;
        }
        break;
      }
      case Verdict::kDropped:
        break;
    }

    if (now % 25 == 0) {
      const auto evicted = sw.sweep_timeouts(now);
      expired_total += evicted.size();
      for (const auto id : evicted) {
        std::erase_if(station_macs,
                      [id](const auto& pair) { return pair.second == id; });
      }
    }
  }

  std::cout << "L2/L3 switch after " << ticks << " ticks:\n";
  std::cout << "  L2 forwarded        : " << l2_forwarded << "\n";
  std::cout << "  routed (3 tables)   : " << routed << "\n";
  std::cout << "  to controller       : " << to_controller << " (learned "
            << learned << " MACs)\n";
  std::cout << "  idle-expired        : " << expired_total << "\n";
  std::cout << "  live entries        : " << sw.entry_count() << "\n";
  std::cout << "  ref-vs-decomposed mismatches: " << mismatches
            << " (must be 0)\n\n";
  sw.pipeline().memory_report("l2l3").print(std::cout);
  return mismatches == 0 ? 0 : 1;
}
