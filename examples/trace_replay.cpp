// Trace replay end to end: synthesize a Zipf-skewed packet stream for a
// calibrated MAC-learning filter set, export it to a classic pcap capture,
// read the capture back, wire-parse it in allocation-free batches, and
// replay it into the parallel runtime with the flow cache on — the full
// bytes-on-disk → classified-actions loop, verified against the
// sequential pipeline oracle. (`tools/trace_replay.cpp` is the same loop
// as a CLI over arbitrary capture files.)
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/builder.hpp"
#include "runtime/runtime.hpp"
#include "trace/pcap.hpp"
#include "trace/replay.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_export.hpp"
#include "workload/trace_gen.hpp"
#include "workload/zipf.hpp"

int main() {
  using namespace ofmtl;

  // A calibrated filter set (VLAN ID + destination MAC) and its compiled
  // two-table pipeline.
  const auto set =
      workload::generate_filterset(workload::FilterApp::kMacLearning, "bbra");
  auto tables = compile_app(build_app(set, TableLayout::kPerFieldTables));

  // A skewed stream: 4096 packets reusing a pool of 256 flows, Zipf s=1.1
  // — the locality real switch traffic exhibits and the flow cache feeds
  // on.
  const auto pool = workload::generate_trace(
      set, {.packets = 256, .hit_ratio = 0.9, .seed = 1});
  workload::ZipfSampler sampler(pool.size(), 1.1, /*seed=*/2);
  std::vector<PacketHeader> stream;
  for (std::size_t i = 0; i < 4096; ++i) stream.push_back(pool[sampler.next()]);

  // Synthetic → pcap: each header is wire-canonicalized (see
  // spec_from_header) and serialized as one capture record.
  const char* path = "example_trace.pcap";
  workload::export_trace(stream).save(path);

  // pcap → headers: batched, allocation-free wire parse; malformed frames
  // would be counted and dropped here, like a NIC dropping runts.
  auto reader = trace::PcapReader::open(path);
  trace::TraceReplayer replayer(reader, /*in_port=*/0);
  std::cout << "capture: " << replayer.frames() << " frames ("
            << (reader.nanosecond() ? "nsec" : "usec") << " timestamps), "
            << replayer.malformed_frames() << " malformed\n";

  // headers → actions: replay into a 1-worker runtime, flow cache on.
  const MultiTableLookup oracle = tables.clone();
  runtime::ParallelRuntime rt(std::move(tables),
                              {.workers = 1, .flow_cache_capacity = 1024});
  std::vector<ExecutionResult> results(replayer.headers().size());
  const auto stats = replayer.run(rt, results, {.batch = 128, .loops = 4});
  const auto workers = rt.aggregate_stats();
  rt.stop();

  std::cout << "replayed " << stats.packets << " packets in "
            << stats.elapsed_ns / 1e6 << " ms (" << stats.ns_per_packet()
            << " ns/packet); flow-cache hit rate "
            << 100.0 * static_cast<double>(workers.cache_hits) /
                   static_cast<double>(workers.cache_hits +
                                       workers.cache_misses)
            << "%\n";

  // The replayed results are bitwise-identical to the sequential pipeline.
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i] != oracle.execute(replayer.headers()[i])) ++mismatches;
  }
  std::cout << (mismatches == 0 ? "verified: replay matches the pipeline "
                                  "oracle bitwise\n"
                                : "MISMATCH\n");
  std::remove(path);
  return mismatches == 0 ? 0 : 1;
}
